//! [`SpgemmService`]: batched request execution over the exec layer.
//!
//! A batch flows through three phases:
//!
//! 1. **Resolve** (sequential, submission order) — operand specs are
//!    materialized once per name, then every request's operand references
//!    probe the [`OperandCache`]; because this walk is sequential, the
//!    per-request hit/miss telemetry and LRU evictions are identical at
//!    any worker count.
//! 2. **Execute** (parallel) — requests fan out through
//!    [`ParallelRunner`] as independent workloads; each multiply step
//!    measures its [`TaskFeatures`], asks the dispatcher for a backend,
//!    and runs it. Choices depend only on matrix structure and the
//!    calibration table, so they too are thread-count-invariant.
//! 3. **Report** — per-request records (backend per step, model cost,
//!    output shape, cache telemetry, wall time) aggregate into a
//!    serializable [`BatchReport`].

use crate::cache::{OperandCache, PreparedOperand};
use crate::dispatch::{AdaptiveDispatcher, Calibration, DispatchPolicy, TaskFeatures};
use crate::request::{Batch, Request};
use crate::{Backend, ServeError};
use serde::{Deserialize, Serialize};
use sparch_exec::{ParallelRunner, ShardPool, Workload};
use sparch_obs::{Counter, Recorder, ThreadRecorder};
use sparch_sparse::{linalg, Csr};
use sparch_tune::OnlineCalibration;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for a [`SpgemmService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Backend selection policy.
    pub policy: DispatchPolicy,
    /// Worker-thread override (`None` = `SPARCH_THREADS` / all cores).
    pub threads: Option<usize>,
    /// Operand-cache capacity, in operands.
    pub cache_capacity: usize,
    /// Calibration table. `None` measures one at service start for the
    /// adaptive policy ([`Calibration::measure`]) and uses the pinned
    /// [`Calibration::reference`] for fixed policies.
    pub calibration: Option<Calibration>,
    /// Memory budget in bytes for a single multiply step. When set, any
    /// step whose [`TaskFeatures::estimated_footprint_bytes`] exceeds it
    /// is routed to [`Backend::Streaming`] regardless of policy (an
    /// in-memory backend would materialize more than the budget). `None`
    /// disables footprint routing.
    pub memory_budget: Option<u64>,
    /// Second, larger footprint threshold in bytes: steps estimated
    /// above it are routed to [`Backend::Distributed`] — shard worker
    /// processes with their own address spaces — instead of the
    /// in-process streaming pipeline. Set it at or above
    /// `memory_budget`. `None` disables distributed routing.
    pub distributed_threshold: Option<u64>,
    /// Pipeline configuration for streaming steps: panel count and
    /// balance mode, merge fan-in, spill codec. The default is the
    /// deterministic [`sparch_stream::StreamConfig::pinned`] (single
    /// multiply worker — request fan-out stays the serving layer's only
    /// parallelism axis). [`ServiceConfig::memory_budget`] overrides the
    /// budget field per step; the other knobs pass through as-is.
    pub stream_config: sparch_stream::StreamConfig,
    /// Plan streaming/distributed steps' knobs per task instead of using
    /// [`ServiceConfig::stream_config`] verbatim: each out-of-core step
    /// runs a [`sparch_tune::KnobPlanner`] over the step's operand
    /// structure and the effective budget, deriving panels, balance,
    /// fan-in and codec (thread-count knobs and the spill directory still
    /// come from `stream_config`). Deterministic — the plan is a pure
    /// function of matrix structure — and bit-identity to the in-memory
    /// backends holds at any planned setting.
    pub auto_tune: bool,
    /// Enables online calibration with the given EWMA smoothing factor
    /// (see [`sparch_tune::OnlineCalibration`]): after every batch, each
    /// step's predicted-vs-measured cost folds back into the dispatcher's
    /// calibration table, so the cost model tracks the machine it is
    /// actually running on. Wall-clock feedback, so later batches'
    /// dispatch choices are *not* run-to-run reproducible — leave `None`
    /// (the default) when determinism matters more than fidelity.
    pub online_calibration: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: DispatchPolicy::Adaptive,
            threads: None,
            cache_capacity: 64,
            calibration: None,
            memory_budget: None,
            distributed_threshold: None,
            stream_config: sparch_stream::StreamConfig::pinned(),
            auto_tune: false,
            online_calibration: None,
        }
    }
}

/// Telemetry for one served request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestReport {
    /// Position of the request in the batch.
    pub index: usize,
    /// Request kind (`single` / `chain` / `power` / `masked`).
    pub kind: String,
    /// Backend chosen for each multiply step, in order.
    pub backends: Vec<String>,
    /// Number of multiply steps executed.
    pub steps: usize,
    /// Total calibrated model cost across the request's steps.
    pub model_cost: f64,
    /// Output shape: rows.
    pub output_rows: usize,
    /// Output shape: columns.
    pub output_cols: usize,
    /// Output stored entries.
    pub output_nnz: usize,
    /// Operand-cache hits while resolving this request's references.
    pub cache_hits: u32,
    /// Operand-cache misses while resolving this request's references.
    pub cache_misses: u32,
    /// Wall-clock seconds on the worker (not deterministic).
    pub wall_seconds: f64,
    /// Calibrated model cost of each multiply step, in order —
    /// deterministic given the batch-start calibration table.
    pub step_model_seconds: Vec<f64>,
    /// Measured wall-clock seconds of each multiply step, in order (not
    /// deterministic; zeroed by [`BatchReport::without_timing`]).
    pub step_actual_seconds: Vec<f64>,
}

/// Steps executed per backend over a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendSteps {
    /// The backend's name.
    pub backend: String,
    /// Multiply steps dispatched to it.
    pub steps: u64,
}

/// The serializable result of serving one batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Report schema version ([`BatchReport::SCHEMA_VERSION`]). Bumped
    /// whenever a field is added, removed, or changes meaning, so
    /// archived reports stay comparable.
    pub schema_version: u32,
    /// The dispatch policy, as text (`adaptive` / `fixed:<backend>`).
    pub policy: String,
    /// Worker threads used for the execute phase.
    pub threads: usize,
    /// Number of requests served.
    pub total_requests: usize,
    /// Total multiply steps across all requests.
    pub total_steps: usize,
    /// Sum of per-request calibrated model costs — the "model-side work"
    /// that makes runs under different policies comparable.
    pub total_model_cost: f64,
    /// Operand-cache hits across the batch's operand references.
    pub cache_hits: u64,
    /// Operand-cache misses across the batch's operand references.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` for this batch (0 when no references).
    pub cache_hit_rate: f64,
    /// Multiply steps per backend, in [`Backend::ALL`] order.
    pub backend_steps: Vec<BackendSteps>,
    /// Wall-clock seconds for the whole batch (not deterministic).
    pub wall_seconds: f64,
    /// Batches served since the calibration table was last fully
    /// (re)measured, *before* this one — `0` right after service start or
    /// [`SpgemmService::recalibrate`]. Online EWMA folds do not reset it:
    /// it counts distance from the last ground-truth measurement.
    pub calibration_age: u64,
    /// Mean over steps of `|predicted − measured|` step cost in seconds —
    /// the quantity online calibration drives down (not deterministic;
    /// zeroed by [`BatchReport::without_timing`]).
    pub mean_abs_cost_error_seconds: f64,
    /// Per-request telemetry, in submission order.
    pub requests: Vec<RequestReport>,
}

impl BatchReport {
    /// Current value written into [`BatchReport::schema_version`].
    /// Version history: 1 — initial schema; 2 — added `calibration_age`,
    /// `mean_abs_cost_error_seconds`, and per-step
    /// `step_model_seconds` / `step_actual_seconds`.
    pub const SCHEMA_VERSION: u32 = 2;

    /// A copy with every wall-clock field zeroed — the model-driven view
    /// that must be bit-identical across worker counts (pinned by
    /// `crates/serve/tests/service_batch.rs`).
    pub fn without_timing(&self) -> BatchReport {
        let mut stripped = self.clone();
        stripped.wall_seconds = 0.0;
        stripped.mean_abs_cost_error_seconds = 0.0;
        for r in &mut stripped.requests {
            r.wall_seconds = 0.0;
            r.step_actual_seconds.iter_mut().for_each(|s| *s = 0.0);
        }
        stripped
    }

    /// Dispatch mispredict rate: over every pair of steps in the batch
    /// whose *predicted* costs differ, the fraction the model ranked in
    /// the opposite order from their *measured* times (a Kendall-style
    /// inversion count). `0.0` is a perfect ranking — the dispatcher's
    /// argmin would have made the same choices with hindsight — and a
    /// batch with fewer than two comparable steps scores `0.0`.
    pub fn mispredict_rate(&self) -> f64 {
        let steps: Vec<(f64, f64)> = self
            .requests
            .iter()
            .flat_map(|r| {
                r.step_model_seconds
                    .iter()
                    .zip(&r.step_actual_seconds)
                    .map(|(&m, &a)| (m, a))
            })
            .collect();
        let mut comparable = 0u64;
        let mut inversions = 0u64;
        for i in 0..steps.len() {
            for j in i + 1..steps.len() {
                let dm = steps[i].0 - steps[j].0;
                let da = steps[i].1 - steps[j].1;
                if dm != 0.0 && da != 0.0 {
                    comparable += 1;
                    if (dm > 0.0) != (da > 0.0) {
                        inversions += 1;
                    }
                }
            }
        }
        if comparable == 0 {
            0.0
        } else {
            inversions as f64 / comparable as f64
        }
    }
}

/// A resolved, shape-checked request ready to execute.
struct PlannedRequest {
    index: usize,
    request: Request,
    ops: Vec<Arc<PreparedOperand>>,
    cache_hits: u32,
    cache_misses: u32,
}

/// The request-serving layer over the six software SpGEMM backends.
///
/// # Example
///
/// ```
/// use sparch_serve::{Batch, DispatchPolicy, ServiceConfig, SpgemmService};
/// use sparch_serve::request::{OperandDef, OperandSpec, Request};
/// use sparch_sparse::gen::Recipe;
///
/// let batch = Batch {
///     operands: vec![OperandDef {
///         name: "g".into(),
///         spec: OperandSpec::Gen {
///             recipe: Recipe::Rmat { n: 64, avg_degree: 4 },
///             seed: 1,
///         },
///     }],
///     requests: vec![
///         Request::Single { a: "g".into(), b: "g".into() },
///         Request::Power { a: "g".into(), k: 3, threshold: 0.0 },
///     ],
/// };
/// let mut service = SpgemmService::new(ServiceConfig {
///     threads: Some(2),
///     ..ServiceConfig::default()
/// });
/// let report = service.serve(&batch).unwrap();
/// assert_eq!(report.total_requests, 2);
/// assert!(report.cache_hits > 0); // "g" is reused across requests
/// ```
pub struct SpgemmService {
    dispatcher: AdaptiveDispatcher,
    cache: OperandCache,
    pool: ShardPool,
    stream_config: sparch_stream::StreamConfig,
    recorder: Recorder,
    auto_tune: bool,
    online: Option<OnlineCalibration>,
    /// The config's pinned table, kept so [`SpgemmService::recalibrate`]
    /// can restore it instead of re-measuring.
    pinned_calibration: Option<Calibration>,
    calibration_age: u64,
}

impl SpgemmService {
    /// Builds a service, measuring a calibration table at start if the
    /// config does not pin one (see [`ServiceConfig::calibration`]).
    pub fn new(config: ServiceConfig) -> Self {
        let pinned_calibration = config.calibration.clone();
        let calibration = config.calibration.unwrap_or_else(|| match config.policy {
            DispatchPolicy::Adaptive => Calibration::measure(0x5bac4),
            DispatchPolicy::Fixed(_) => Calibration::reference(),
        });
        let slots = calibration.seconds_per_unit.len();
        let mut dispatcher = AdaptiveDispatcher::new(config.policy, calibration);
        if let Some(budget) = config.memory_budget {
            dispatcher = dispatcher.with_memory_budget(budget);
        }
        if let Some(threshold) = config.distributed_threshold {
            dispatcher = dispatcher.with_distributed_threshold(threshold);
        }
        SpgemmService {
            dispatcher,
            cache: OperandCache::new(config.cache_capacity),
            pool: ShardPool::with_override(config.threads),
            stream_config: config.stream_config,
            recorder: Recorder::disabled(),
            auto_tune: config.auto_tune,
            online: config
                .online_calibration
                .map(|alpha| OnlineCalibration::new(alpha, slots)),
            pinned_calibration,
            calibration_age: 0,
        }
    }

    /// Batches served since the calibration table was last fully
    /// (re)measured ([`SpgemmService::new`] or
    /// [`SpgemmService::recalibrate`]).
    pub fn calibration_age(&self) -> u64 {
        self.calibration_age
    }

    /// Refreshes the calibration table from scratch: restores the
    /// config's pinned table if one was given, otherwise re-measures
    /// (adaptive policy) or resets to [`Calibration::reference`] (fixed).
    /// Any accumulated online-calibration state is dropped — the EWMA
    /// estimates were relative to a table this call replaces — and
    /// [`SpgemmService::calibration_age`] returns to `0`.
    ///
    /// The model-driven view of a batch served right after `recalibrate`
    /// on a pinned-calibration service is bit-identical to one served
    /// right after service start ([`BatchReport::without_timing`]).
    pub fn recalibrate(&mut self) {
        let calibration =
            self.pinned_calibration
                .clone()
                .unwrap_or_else(|| match self.dispatcher.policy() {
                    DispatchPolicy::Adaptive => Calibration::measure(0x5bac4),
                    DispatchPolicy::Fixed(_) => Calibration::reference(),
                });
        self.dispatcher.set_calibration(calibration);
        if let Some(online) = &mut self.online {
            online.reset();
        }
        self.calibration_age = 0;
    }

    /// Replaces the service's recorder. With an enabled recorder every
    /// multiply step records a span named after the chosen backend (one
    /// lane per request, labelled `req-<index>`) carrying the model's
    /// cost estimate, and the `serve.model_cost_us` /
    /// `serve.actual_cost_us` counters accumulate predicted vs measured
    /// step time in microseconds.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The recorder this service reports spans and metrics to.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The dispatcher (policy + calibration) this service runs with.
    pub fn dispatcher(&self) -> &AdaptiveDispatcher {
        &self.dispatcher
    }

    /// The operand cache (persists across [`SpgemmService::serve`] calls).
    pub fn cache(&self) -> &OperandCache {
        &self.cache
    }

    /// Serves one batch: resolves operands through the cache, executes
    /// every request across the worker pool, and returns the batch report.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if an operand fails to build, a request
    /// references an unknown name, or shapes are incompatible. The batch
    /// is validated before anything executes — a bad request fails the
    /// whole batch rather than half-running it.
    pub fn serve(&mut self, batch: &Batch) -> Result<BatchReport, ServeError> {
        let wall_start = Instant::now();
        let plans = self.resolve(batch)?;

        let dispatcher = &self.dispatcher;
        let stream_config = &self.stream_config;
        let recorder = &self.recorder;
        let auto_tune = self.auto_tune;
        let jobs: Vec<RequestJob<'_>> = plans
            .into_iter()
            .map(|plan| RequestJob {
                plan,
                dispatcher,
                stream_config,
                recorder,
                auto_tune,
            })
            .collect();
        let timed = ParallelRunner::new(self.pool).quiet().run_all_timed(&jobs);

        let mut requests: Vec<RequestReport> = Vec::with_capacity(timed.len());
        for t in timed {
            let mut report = t.record;
            report.wall_seconds = t.run_seconds;
            requests.push(report);
        }

        let (mean_abs_cost_error_seconds, calibration_age) = self.fold_online_feedback(&requests);

        let cache_hits: u64 = requests.iter().map(|r| r.cache_hits as u64).sum();
        let cache_misses: u64 = requests.iter().map(|r| r.cache_misses as u64).sum();
        let refs = cache_hits + cache_misses;
        let mut steps_per_backend: HashMap<&str, u64> = HashMap::new();
        for r in &requests {
            for b in &r.backends {
                *steps_per_backend.entry(b.as_str()).or_insert(0) += 1;
            }
        }
        Ok(BatchReport {
            schema_version: BatchReport::SCHEMA_VERSION,
            policy: self.dispatcher.policy().to_string(),
            threads: self.pool.threads(),
            total_requests: requests.len(),
            total_steps: requests.iter().map(|r| r.steps).sum(),
            total_model_cost: requests.iter().map(|r| r.model_cost).sum(),
            cache_hits,
            cache_misses,
            cache_hit_rate: if refs == 0 {
                0.0
            } else {
                cache_hits as f64 / refs as f64
            },
            backend_steps: Backend::ALL
                .iter()
                .map(|b| BackendSteps {
                    backend: b.name().to_string(),
                    steps: steps_per_backend.get(b.name()).copied().unwrap_or(0),
                })
                .collect(),
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            calibration_age,
            mean_abs_cost_error_seconds,
            requests,
        })
    }

    /// Post-batch bookkeeping for the calibration loop: computes the
    /// batch's mean absolute prediction error, feeds every step's
    /// predicted-vs-measured cost into the online EWMA (when enabled) and
    /// folds the refreshed estimates into the dispatcher's table — always
    /// *between* batches, never mid-batch — then advances the age
    /// counter. Returns `(mean_abs_error, age_before_this_batch)`.
    fn fold_online_feedback(&mut self, requests: &[RequestReport]) -> (f64, u64) {
        let mut abs_error = 0.0;
        let mut steps = 0u64;
        for r in requests {
            for (&model, &actual) in r.step_model_seconds.iter().zip(&r.step_actual_seconds) {
                abs_error += (model - actual).abs();
                steps += 1;
            }
        }
        let mean_abs_error = if steps == 0 {
            0.0
        } else {
            abs_error / steps as f64
        };

        if let Some(online) = &mut self.online {
            // The table was frozen for the whole batch, so dividing each
            // step's calibrated cost by its backend's seconds-per-unit
            // recovers the model's abstract units exactly.
            let table = self.dispatcher.calibration().clone();
            for r in requests {
                for ((name, &model), &actual) in r
                    .backends
                    .iter()
                    .zip(&r.step_model_seconds)
                    .zip(&r.step_actual_seconds)
                {
                    let Some(slot) = Backend::ALL.iter().position(|b| b.name() == name) else {
                        continue;
                    };
                    let per_unit = table.seconds_per_unit.get(slot).copied().unwrap_or(1.0);
                    if per_unit > 0.0 && per_unit.is_finite() {
                        online.observe(slot, model / per_unit, actual);
                    }
                }
            }
            let mut folded = table;
            online.fold_into(&mut folded.seconds_per_unit);
            self.dispatcher.set_calibration(folded);
        }

        let age = self.calibration_age;
        self.calibration_age += 1;
        (mean_abs_error, age)
    }

    /// Phase 1: materialize operands, probe the cache in submission
    /// order, and shape-check every request.
    fn resolve(&mut self, batch: &Batch) -> Result<Vec<PlannedRequest>, ServeError> {
        let mut specs = HashMap::new();
        for def in &batch.operands {
            if specs.insert(def.name.as_str(), &def.spec).is_some() {
                return Err(ServeError::Operand(format!(
                    "duplicate operand name {:?}",
                    def.name
                )));
            }
        }

        // Per-name memo of the built + prepared operand: the first
        // reference pays for the build, the fingerprint hash and (on a
        // cache miss) the conversions; every later reference probes the
        // cache by the memoized fingerprint — O(1), no rehash — with
        // identical hit/miss/LRU semantics.
        let mut resolved: HashMap<&str, Arc<PreparedOperand>> = HashMap::new();
        let mut plans = Vec::with_capacity(batch.requests.len());
        for (index, request) in batch.requests.iter().enumerate() {
            let mut ops = Vec::new();
            let (mut hits, mut misses) = (0u32, 0u32);
            for name in request.operand_names() {
                let (prepared, hit) = match resolved.get(name) {
                    Some(prepared) => {
                        let hit = self.cache.probe_prepared(prepared.fingerprint, prepared);
                        (Arc::clone(prepared), hit)
                    }
                    None => {
                        let Some(&spec) = specs.get(name) else {
                            return Err(ServeError::Operand(format!(
                                "request {index} references unknown operand {name:?}"
                            )));
                        };
                        let (prepared, hit) = self.cache.get_or_prepare(&spec.build()?);
                        resolved.insert(name, Arc::clone(&prepared));
                        (prepared, hit)
                    }
                };
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                ops.push(prepared);
            }
            validate_shapes(index, request, &ops)?;
            plans.push(PlannedRequest {
                index,
                request: request.clone(),
                ops,
                cache_hits: hits,
                cache_misses: misses,
            });
        }
        Ok(plans)
    }
}

impl Default for SpgemmService {
    fn default() -> Self {
        SpgemmService::new(ServiceConfig::default())
    }
}

fn validate_shapes(
    index: usize,
    request: &Request,
    ops: &[Arc<PreparedOperand>],
) -> Result<(), ServeError> {
    let shape = |i: usize| (ops[i].csr.rows(), ops[i].csr.cols());
    let mismatch = |msg: String| Err(ServeError::Shape(format!("request {index}: {msg}")));
    match request {
        Request::Single { .. } => {
            if shape(0).1 != shape(1).0 {
                return mismatch(format!("{:?} * {:?}", shape(0), shape(1)));
            }
        }
        Request::Chain { operands } => {
            if operands.len() < 2 {
                return mismatch("chain needs at least two operands".into());
            }
            for w in 0..ops.len() - 1 {
                if shape(w).1 != shape(w + 1).0 {
                    return mismatch(format!(
                        "chain link {w}: {:?} * {:?}",
                        shape(w),
                        shape(w + 1)
                    ));
                }
            }
        }
        Request::Power { k, .. } => {
            if *k == 0 {
                return mismatch("power needs k >= 1".into());
            }
            if shape(0).0 != shape(0).1 {
                return mismatch(format!("power needs a square operand, got {:?}", shape(0)));
            }
        }
        Request::Masked { .. } => {
            if shape(0).1 != shape(1).0 {
                return mismatch(format!("{:?} * {:?}", shape(0), shape(1)));
            }
            if shape(2) != (shape(0).0, shape(1).1) {
                return mismatch(format!(
                    "mask shape {:?} != output shape {:?}",
                    shape(2),
                    (shape(0).0, shape(1).1)
                ));
            }
        }
    }
    Ok(())
}

/// One planned request as an exec-layer workload.
struct RequestJob<'a> {
    plan: PlannedRequest,
    dispatcher: &'a AdaptiveDispatcher,
    stream_config: &'a sparch_stream::StreamConfig,
    recorder: &'a Recorder,
    auto_tune: bool,
}

/// Seconds → whole microseconds, the fixed-point unit the serve cost
/// counters accumulate in.
fn cost_micros(seconds: f64) -> u64 {
    (seconds * 1e6).round() as u64
}

/// Running tally of one request's multiply steps.
struct StepLog<'a> {
    backends: Vec<String>,
    model_cost: f64,
    step_model_seconds: Vec<f64>,
    step_actual_seconds: Vec<f64>,
    stream_config: &'a sparch_stream::StreamConfig,
    auto_tune: bool,
    lane: ThreadRecorder,
    model_cost_us: Counter,
    actual_cost_us: Counter,
}

impl<'a> StepLog<'a> {
    fn new(
        stream_config: &'a sparch_stream::StreamConfig,
        auto_tune: bool,
        recorder: &Recorder,
        index: u64,
    ) -> Self {
        StepLog {
            backends: Vec::new(),
            model_cost: 0.0,
            step_model_seconds: Vec::new(),
            step_actual_seconds: Vec::new(),
            stream_config,
            auto_tune,
            lane: recorder.thread_for("req", index),
            model_cost_us: recorder.counter("serve.model_cost_us"),
            actual_cost_us: recorder.counter("serve.actual_cost_us"),
        }
    }

    /// The pipeline configuration for one out-of-core step: the service's
    /// `stream_config` with the dispatcher's budget override — and, under
    /// `auto_tune`, with data knobs (panels, balance, fan-in, codec)
    /// re-planned per task from the step's operand structure. Thread
    /// knobs and the spill directory always come from the service config.
    fn stream_config_for(
        &self,
        d: &AdaptiveDispatcher,
        a: &Csr,
        b: &Csr,
    ) -> sparch_stream::StreamConfig {
        let mut config = self.stream_config.clone();
        if let Some(budget) = d.memory_budget() {
            config.budget = sparch_stream::MemoryBudget::from_bytes(budget);
        }
        if self.auto_tune {
            let stats = sparch_tune::OperandStats::from_csr(a);
            let b_rows = sparch_tune::row_nnz_histogram(b);
            let plan = sparch_tune::KnobPlanner::new(config.budget)
                .with_threads(config.threads.unwrap_or(1))
                .plan(&stats, &sparch_tune::BRows::Histogram(&b_rows));
            config = sparch_stream::StreamConfig {
                threads: config.threads,
                merge_workers: config.merge_workers,
                spill_dir: config.spill_dir.clone(),
                ..plan.config
            };
        }
        config
    }

    /// One multiply step with both operands from the cache: every cached
    /// view (CSC, occupancy counts) feeds the feature measurement.
    fn multiply_pair(
        &mut self,
        d: &AdaptiveDispatcher,
        a: &PreparedOperand,
        b: &PreparedOperand,
    ) -> Csr {
        let features = TaskFeatures::measure_pair(a, b);
        self.dispatch(d, &features, &a.csr, &b.csr)
    }

    /// One multiply step on a plain (intermediate) left operand against a
    /// cached right operand — the chain/power continuation case.
    fn multiply_rhs(&mut self, d: &AdaptiveDispatcher, a: &Csr, b: &PreparedOperand) -> Csr {
        let features = TaskFeatures::measure_rhs(a, b);
        self.dispatch(d, &features, a, &b.csr)
    }

    fn dispatch(
        &mut self,
        d: &AdaptiveDispatcher,
        features: &TaskFeatures,
        a: &Csr,
        b: &Csr,
    ) -> Csr {
        let (backend, cost) = d.choose(features);
        self.backends.push(backend.name().to_string());
        self.model_cost += cost;
        // The span is named after the *chosen* backend, so a trace shows
        // the dispatch decision and its duration in one event; the
        // model's estimate rides along as an arg for side-by-side
        // comparison with the span's measured duration.
        let span = self.lane.begin("serve", backend.name());
        let result = match backend {
            // A streaming step runs the *service's* pipeline
            // configuration (panel balance, codec, fan-in), with the
            // budget field overridden by the service budget when one is
            // set — the bound the footprint routing promised — rather
            // than the pinned default `Backend::run` uses standalone.
            // Under `auto_tune` the data knobs are re-planned per task.
            Backend::Streaming => {
                crate::backend::run_streaming_with(self.stream_config_for(d, a, b), a, b)
            }
            // A distributed step ships the service's stream config (and
            // budget, applied *per shard*) to the worker fleet; if no
            // fleet can be spawned it degrades to the streaming pipeline
            // with the identical result.
            Backend::Distributed => {
                let config = sparch_dist::DistConfig {
                    stream: self.stream_config_for(d, a, b),
                    ..sparch_dist::DistConfig::default()
                };
                crate::backend::run_distributed_with(config, a, b)
            }
            _ => backend.run(a, b),
        };
        let actual = self
            .lane
            .end_with(span, &[("model_cost_us", cost_micros(cost))]);
        self.model_cost_us.add(cost_micros(cost));
        self.actual_cost_us.add(cost_micros(actual));
        self.step_model_seconds.push(cost);
        self.step_actual_seconds.push(actual);
        result
    }
}

impl Workload for RequestJob<'_> {
    type Input = ();
    type Record = RequestReport;

    fn name(&self) -> String {
        format!("req-{}", self.plan.index)
    }

    fn build(&self) {}

    fn run(&self, (): ()) -> RequestReport {
        let d = self.dispatcher;
        let ops = &self.plan.ops;
        let mut log = StepLog::new(
            self.stream_config,
            self.auto_tune,
            self.recorder,
            self.plan.index as u64,
        );
        let result = match &self.plan.request {
            Request::Single { .. } => log.multiply_pair(d, &ops[0], &ops[1]),
            Request::Chain { .. } => {
                let mut cur = log.multiply_pair(d, &ops[0], &ops[1]);
                for next in &ops[2..] {
                    cur = log.multiply_rhs(d, &cur, next);
                }
                cur
            }
            Request::Power { k, threshold, .. } => {
                let a = &ops[0];
                let mut cur = a.csr.clone();
                for step in 1..*k {
                    cur = if step == 1 {
                        log.multiply_pair(d, a, a)
                    } else {
                        log.multiply_rhs(d, &cur, a)
                    };
                    if *threshold > 0.0 {
                        cur = linalg::prune(&cur, *threshold);
                    }
                }
                cur
            }
            Request::Masked { .. } => {
                let product = log.multiply_pair(d, &ops[0], &ops[1]);
                linalg::hadamard(&product, &ops[2].csr)
            }
        };
        RequestReport {
            index: self.plan.index,
            kind: self.plan.request.kind().to_string(),
            steps: log.backends.len(),
            backends: log.backends,
            model_cost: log.model_cost,
            output_rows: result.rows(),
            output_cols: result.cols(),
            output_nnz: result.nnz(),
            cache_hits: self.plan.cache_hits,
            cache_misses: self.plan.cache_misses,
            wall_seconds: 0.0, // filled from the runner's measurement
            step_model_seconds: log.step_model_seconds,
            step_actual_seconds: log.step_actual_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{OperandDef, OperandSpec};
    use sparch_sparse::gen::Recipe;
    use sparch_sparse::{algo, gen};

    fn gen_operand(name: &str, recipe: Recipe, seed: u64) -> OperandDef {
        OperandDef {
            name: name.into(),
            spec: OperandSpec::Gen { recipe, seed },
        }
    }

    fn fixed_service(backend: Backend) -> SpgemmService {
        SpgemmService::new(ServiceConfig {
            policy: DispatchPolicy::Fixed(backend),
            threads: Some(2),
            calibration: Some(Calibration::reference()),
            ..ServiceConfig::default()
        })
    }

    fn small_batch() -> Batch {
        Batch {
            operands: vec![
                gen_operand(
                    "g",
                    Recipe::Rmat {
                        n: 48,
                        avg_degree: 4,
                    },
                    1,
                ),
                gen_operand(
                    "u",
                    Recipe::Uniform {
                        rows: 48,
                        cols: 48,
                        nnz: 200,
                    },
                    2,
                ),
            ],
            requests: vec![
                Request::Single {
                    a: "g".into(),
                    b: "u".into(),
                },
                Request::Chain {
                    operands: vec!["g".into(), "u".into(), "g".into()],
                },
                Request::Power {
                    a: "g".into(),
                    k: 3,
                    threshold: 0.0,
                },
                Request::Masked {
                    a: "g".into(),
                    b: "g".into(),
                    mask: "u".into(),
                },
            ],
        }
    }

    #[test]
    fn results_match_direct_computation() {
        let mut service = fixed_service(Backend::Gustavson);
        let report = service.serve(&small_batch()).unwrap();
        let g = Recipe::Rmat {
            n: 48,
            avg_degree: 4,
        }
        .build(1);
        let u = Recipe::Uniform {
            rows: 48,
            cols: 48,
            nnz: 200,
        }
        .build(2);

        assert_eq!(report.requests[0].output_nnz, algo::gustavson(&g, &u).nnz());
        let chain = algo::gustavson(&algo::gustavson(&g, &u), &g);
        assert_eq!(report.requests[1].output_nnz, chain.nnz());
        let cube = algo::gustavson(&algo::gustavson(&g, &g), &g);
        assert_eq!(report.requests[2].output_nnz, cube.nnz());
        let masked = linalg::hadamard(&algo::gustavson(&g, &g), &u);
        assert_eq!(report.requests[3].output_nnz, masked.nnz());

        assert_eq!(report.total_steps, 1 + 2 + 2 + 1);
        assert!(report
            .requests
            .iter()
            .all(|r| r.backends.iter().all(|b| b == "gustavson")));
    }

    #[test]
    fn cache_hits_accumulate_within_and_across_batches() {
        let mut service = fixed_service(Backend::Gustavson);
        let report = service.serve(&small_batch()).unwrap();
        // 9 operand references over 2 distinct operands: 2 misses.
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_hits, 7);
        assert!(report.cache_hit_rate > 0.7);
        // Second serve of the same batch: everything hits.
        let second = service.serve(&small_batch()).unwrap();
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, 9);
    }

    #[test]
    fn power_resparsification_prunes() {
        let ops = vec![gen_operand(
            "m",
            Recipe::Uniform {
                rows: 40,
                cols: 40,
                nnz: 300,
            },
            5,
        )];
        let with_prune = Batch {
            operands: ops.clone(),
            requests: vec![Request::Power {
                a: "m".into(),
                k: 3,
                threshold: 0.5,
            }],
        };
        let without = Batch {
            operands: ops,
            requests: vec![Request::Power {
                a: "m".into(),
                k: 3,
                threshold: 0.0,
            }],
        };
        let mut service = fixed_service(Backend::Gustavson);
        let pruned_nnz = service.serve(&with_prune).unwrap().requests[0].output_nnz;
        let full_nnz = service.serve(&without).unwrap().requests[0].output_nnz;
        assert!(pruned_nnz < full_nnz, "{pruned_nnz} !< {full_nnz}");
        // The pruned result matches pruning applied between direct multiplies.
        let m = gen::uniform_random(40, 40, 300, 5);
        let sq = linalg::prune(&algo::gustavson(&m, &m), 0.5);
        let cube = linalg::prune(&algo::gustavson(&sq, &m), 0.5);
        assert_eq!(pruned_nnz, cube.nnz());
    }

    #[test]
    fn power_k1_copies_the_operand() {
        let batch = Batch {
            operands: vec![gen_operand(
                "m",
                Recipe::Uniform {
                    rows: 16,
                    cols: 16,
                    nnz: 60,
                },
                1,
            )],
            requests: vec![Request::Power {
                a: "m".into(),
                k: 1,
                threshold: 0.0,
            }],
        };
        let report = fixed_service(Backend::Heap).serve(&batch).unwrap();
        assert_eq!(report.requests[0].steps, 0);
        assert_eq!(
            report.requests[0].output_nnz,
            Recipe::Uniform {
                rows: 16,
                cols: 16,
                nnz: 60
            }
            .build(1)
            .nnz()
        );
    }

    #[test]
    fn memory_budget_routes_batch_steps_to_streaming() {
        let mut service = SpgemmService::new(ServiceConfig {
            policy: DispatchPolicy::Adaptive,
            threads: Some(2),
            calibration: Some(Calibration::reference()),
            memory_budget: Some(1), // every real task exceeds one byte
            ..ServiceConfig::default()
        });
        let report = service.serve(&small_batch()).unwrap();
        assert!(report.total_steps > 0);
        assert!(
            report
                .requests
                .iter()
                .flat_map(|r| &r.backends)
                .all(|b| b == "streaming"),
            "footprint routing must override the adaptive argmin"
        );
        // The streamed results carry the same structure as the in-memory
        // baseline.
        let baseline = fixed_service(Backend::Gustavson)
            .serve(&small_batch())
            .unwrap();
        for (r, b) in report.requests.iter().zip(&baseline.requests) {
            assert_eq!(r.output_nnz, b.output_nnz, "request {}", r.index);
        }
    }

    #[test]
    fn custom_stream_config_threads_through_to_streaming_steps() {
        // A non-default pipeline configuration — zero budget so spills
        // really happen, varint codec, nnz balance, small panels — must
        // reach the streaming steps and still reproduce the in-memory
        // structure exactly.
        let stream_config = sparch_stream::StreamConfig {
            panels: 3,
            balance: sparch_stream::PanelBalance::Nnz,
            merge_ways: 2,
            spill_codec: sparch_stream::SpillCodec::Varint,
            ..sparch_stream::StreamConfig::pinned()
        };
        let mut service = SpgemmService::new(ServiceConfig {
            policy: DispatchPolicy::Fixed(Backend::Streaming),
            threads: Some(2),
            calibration: Some(Calibration::reference()),
            memory_budget: Some(1), // zero-ish budget: every partial spills
            stream_config,
            ..ServiceConfig::default()
        });
        let report = service.serve(&small_batch()).unwrap();
        assert!(report.total_steps > 0);
        assert!(report
            .requests
            .iter()
            .flat_map(|r| &r.backends)
            .all(|b| b == "streaming"));
        let baseline = fixed_service(Backend::Gustavson)
            .serve(&small_batch())
            .unwrap();
        for (r, b) in report.requests.iter().zip(&baseline.requests) {
            assert_eq!(r.output_nnz, b.output_nnz, "request {}", r.index);
        }
    }

    #[test]
    fn bad_batches_fail_before_executing() {
        let mut service = fixed_service(Backend::Gustavson);
        let unknown = Batch {
            operands: vec![],
            requests: vec![Request::Single {
                a: "ghost".into(),
                b: "ghost".into(),
            }],
        };
        assert!(matches!(
            service.serve(&unknown),
            Err(ServeError::Operand(_))
        ));

        let rect = gen_operand(
            "r",
            Recipe::Uniform {
                rows: 8,
                cols: 12,
                nnz: 20,
            },
            1,
        );
        let mismatched = Batch {
            operands: vec![rect.clone()],
            requests: vec![Request::Single {
                a: "r".into(),
                b: "r".into(),
            }],
        };
        assert!(matches!(
            service.serve(&mismatched),
            Err(ServeError::Shape(_))
        ));

        let non_square_power = Batch {
            operands: vec![rect.clone()],
            requests: vec![Request::Power {
                a: "r".into(),
                k: 2,
                threshold: 0.0,
            }],
        };
        assert!(matches!(
            service.serve(&non_square_power),
            Err(ServeError::Shape(_))
        ));

        let short_chain = Batch {
            operands: vec![rect],
            requests: vec![Request::Chain {
                operands: vec!["r".into()],
            }],
        };
        assert!(matches!(
            service.serve(&short_chain),
            Err(ServeError::Shape(_))
        ));
    }

    #[test]
    fn report_serializes_and_round_trips() {
        let mut service = fixed_service(Backend::Hash);
        let report = service.serve(&small_batch()).unwrap();
        assert_eq!(report.schema_version, BatchReport::SCHEMA_VERSION);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn recorder_traces_every_dispatch_decision() {
        let mut service = fixed_service(Backend::Gustavson).with_recorder(Recorder::enabled());
        let report = service.serve(&small_batch()).unwrap();
        let trace = service.recorder().drain("serve");

        // One span per multiply step, named after the chosen backend,
        // on a lane per request.
        assert_eq!(trace.count_named("gustavson"), report.total_steps);
        assert_eq!(trace.spans.len(), report.total_steps);
        assert_eq!(trace.threads.len(), report.total_requests);
        assert!(trace.threads.iter().all(|t| t.label.starts_with("req-")));

        // The cost counters accumulate in whole microseconds: the model
        // counter matches the report's model cost to per-step rounding,
        // and real work took measurable time.
        let model_us = trace.metrics.counter("serve.model_cost_us");
        let expected = report.total_model_cost * 1e6;
        assert!(
            (model_us as f64 - expected).abs() <= report.total_steps as f64,
            "{model_us} vs {expected}"
        );
        assert!(trace.metrics.counter("serve.actual_cost_us") > 0);

        // A service without a recorder traces nothing.
        let mut untraced = fixed_service(Backend::Gustavson);
        untraced.serve(&small_batch()).unwrap();
        let empty = untraced.recorder().drain("serve");
        assert!(empty.spans.is_empty() && empty.threads.is_empty());
    }
}
