//! The operand cache: the paper's condensed-MatA idea lifted to serving.
//!
//! SpArch converts the left operand into a condensed/CSC view once and
//! reuses it across the whole multiply. A serving layer sees the *same
//! operand* arrive in many requests (the same graph squared, chained, and
//! masked), so the conversions — CSC view, structural statistics — are
//! worth keeping across calls. [`OperandCache`] is a deterministic LRU
//! keyed by [`Csr::fingerprint`]; a hit returns the shared
//! [`PreparedOperand`] without re-deriving anything.

use sparch_sparse::stats::MatrixStats;
use sparch_sparse::{Csc, Csr};
use std::collections::HashMap;
use std::sync::Arc;

/// A matrix plus every derived view the serving layer reuses:
/// its CSC conversion (outer/inner dataflows, `occupied_cols`), its
/// structural statistics, and per-axis occupancy counts for the
/// dispatcher's work model.
#[derive(Debug, Clone)]
pub struct PreparedOperand {
    /// The operand itself.
    pub csr: Csr,
    /// Cached CSC view of the operand.
    pub csc: Csc,
    /// Cached structural statistics.
    pub stats: MatrixStats,
    /// Rows with at least one entry (a dispatcher work-model input).
    pub nonempty_rows: usize,
    /// Columns with at least one entry (a dispatcher work-model input).
    pub nonempty_cols: usize,
    /// The fingerprint this operand is cached under.
    pub fingerprint: u64,
}

impl PreparedOperand {
    /// Performs every conversion once.
    pub fn prepare(csr: Csr) -> Self {
        let fingerprint = csr.fingerprint();
        let csc = csr.to_csc();
        let stats = MatrixStats::of(&csr);
        PreparedOperand {
            nonempty_rows: stats.rows - stats.empty_rows,
            nonempty_cols: csc.occupied_cols(),
            csr,
            csc,
            stats,
            fingerprint,
        }
    }
}

/// A least-recently-used cache of [`PreparedOperand`]s keyed by matrix
/// fingerprint.
///
/// Recency is tracked with a logical tick that advances on every probe,
/// so hit/miss/eviction behaviour depends only on the probe sequence —
/// the service probes sequentially in request submission order, which
/// makes per-request cache telemetry identical at any worker count.
#[derive(Debug)]
pub struct OperandCache {
    capacity: usize,
    entries: HashMap<u64, (u64, Arc<PreparedOperand>)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl OperandCache {
    /// A cache holding at most `capacity` operands (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        OperandCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `csr` by fingerprint, preparing and inserting on a miss.
    /// Returns the shared prepared operand and whether this was a hit.
    ///
    /// Callers that probe the same operand repeatedly should hold on to
    /// the returned `Arc` and use [`OperandCache::probe_prepared`] for
    /// subsequent references — it skips rehashing the matrix.
    pub fn get_or_prepare(&mut self, csr: &Csr) -> (Arc<PreparedOperand>, bool) {
        let key = csr.fingerprint();
        if let Some(prepared) = self.lookup(key) {
            return (prepared, true);
        }
        let prepared = Arc::new(PreparedOperand::prepare(csr.clone()));
        self.insert(key, Arc::clone(&prepared));
        (prepared, false)
    }

    /// Probes for an operand whose fingerprint and preparation the caller
    /// already holds (the service memoizes both per operand *name*, so a
    /// thousand references to one operand hash it once, not a thousand
    /// times). Counts a hit or miss exactly like [`get_or_prepare`]
    /// would; on a miss — the entry was evicted since the caller last saw
    /// it — the supplied preparation is re-inserted without recomputing
    /// anything. Returns whether it was a hit.
    ///
    /// [`get_or_prepare`]: OperandCache::get_or_prepare
    pub fn probe_prepared(&mut self, fingerprint: u64, prepared: &Arc<PreparedOperand>) -> bool {
        if self.lookup(fingerprint).is_some() {
            return true;
        }
        self.insert(fingerprint, Arc::clone(prepared));
        false
    }

    /// Hit path shared by the probes: advances the clock, bumps recency
    /// and the hit counter.
    fn lookup(&mut self, key: u64) -> Option<Arc<PreparedOperand>> {
        self.tick += 1;
        if let Some((last_use, prepared)) = self.entries.get_mut(&key) {
            *last_use = self.tick;
            self.hits += 1;
            return Some(Arc::clone(prepared));
        }
        None
    }

    /// Miss path shared by the probes: counts the miss, evicts the LRU
    /// entry if full, inserts at the current tick (set by [`lookup`]).
    ///
    /// [`lookup`]: OperandCache::lookup
    fn insert(&mut self, key: u64, prepared: Arc<PreparedOperand>) {
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used entry (deterministic: ticks
            // are unique, so the minimum is unique).
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (t, _))| *t) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (self.tick, prepared));
    }

    /// Number of operands currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime probe hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime probe misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit rate in `[0, 1]` (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn repeated_operand_hits() {
        let mut cache = OperandCache::new(8);
        let a = gen::uniform_random(32, 32, 128, 1);
        let (_, hit) = cache.get_or_prepare(&a);
        assert!(!hit);
        let (prepared, hit) = cache.get_or_prepare(&a);
        assert!(hit);
        assert_eq!(prepared.csr, a);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equal_matrices_share_one_entry() {
        let mut cache = OperandCache::new(8);
        let a = gen::rmat_graph500(64, 4, 9);
        let b = a.clone();
        cache.get_or_prepare(&a);
        let (_, hit) = cache.get_or_prepare(&b);
        assert!(hit, "identical content must hit regardless of allocation");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut cache = OperandCache::new(2);
        let m1 = gen::uniform_random(16, 16, 40, 1);
        let m2 = gen::uniform_random(16, 16, 40, 2);
        let m3 = gen::uniform_random(16, 16, 40, 3);
        cache.get_or_prepare(&m1);
        cache.get_or_prepare(&m2);
        cache.get_or_prepare(&m1); // m2 is now the LRU
        cache.get_or_prepare(&m3); // evicts m2
        assert_eq!(cache.len(), 2);
        assert!(cache.get_or_prepare(&m1).1, "m1 stayed resident");
        assert!(!cache.get_or_prepare(&m2).1, "m2 was evicted");
    }

    #[test]
    fn prepared_views_are_consistent() {
        let a = gen::uniform_random(24, 40, 160, 7);
        let p = PreparedOperand::prepare(a.clone());
        assert_eq!(p.csc.to_csr(), a);
        assert_eq!(p.stats, MatrixStats::of(&a));
        assert_eq!(p.fingerprint, a.fingerprint());
        assert_eq!(
            p.nonempty_rows,
            (0..a.rows()).filter(|&r| a.row_nnz(r) > 0).count()
        );
        assert_eq!(p.nonempty_cols, a.to_csc().occupied_cols());
    }

    #[test]
    fn probe_prepared_matches_get_or_prepare_telemetry() {
        let mut cache = OperandCache::new(2);
        let m1 = gen::uniform_random(16, 16, 40, 1);
        let m2 = gen::uniform_random(16, 16, 40, 2);
        let m3 = gen::uniform_random(16, 16, 40, 3);
        let (p1, _) = cache.get_or_prepare(&m1);
        // Resident entry: probe hits without rehashing.
        assert!(cache.probe_prepared(p1.fingerprint, &p1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Evict m1 (capacity 2, m1 is LRU after m2/m3 insertions).
        cache.get_or_prepare(&m2);
        cache.get_or_prepare(&m3);
        // Probe after eviction: counted as a miss and re-inserted.
        assert!(!cache.probe_prepared(p1.fingerprint, &p1));
        assert!(cache.probe_prepared(p1.fingerprint, &p1));
        assert_eq!(cache.len(), 2);
    }
}
