//! Request-serving layer for the SpArch reproduction.
//!
//! SpArch's core insight is that the right SpGEMM strategy depends on the
//! matrix's measured structure — condensing, Huffman scheduling and
//! look-ahead all exploit it in hardware. This crate applies the same
//! principle one level up, at the *serving* boundary: a
//! [`SpgemmService`] accepts batches of typed requests (single, chained
//! and masked multiplies, matrix powers with re-sparsification), an
//! [`AdaptiveDispatcher`] picks among the six software backends in
//! `sparch_sparse::algo` per multiply step from measured
//! [`TaskFeatures`] and a startup [`Calibration`] table, and an
//! [`OperandCache`] keyed by [`Csr::fingerprint`](sparch_sparse::Csr::fingerprint)
//! reuses each operand's CSC/statistics conversions across requests — the
//! paper's condensed-MatA idea lifted to the serving layer.
//!
//! Requests fan out through `sparch_exec::ParallelRunner`; every
//! model-driven number in the resulting [`BatchReport`] (backend choices,
//! model costs, output shapes, cache telemetry) is bit-identical at any
//! worker count.
//!
//! # Example
//!
//! ```
//! use sparch_serve::prelude::*;
//! use sparch_sparse::gen::Recipe;
//!
//! let batch = Batch {
//!     operands: vec![OperandDef {
//!         name: "g".into(),
//!         spec: OperandSpec::Gen {
//!             recipe: Recipe::Rmat { n: 64, avg_degree: 4 },
//!             seed: 42,
//!         },
//!     }],
//!     requests: vec![
//!         Request::Single { a: "g".into(), b: "g".into() },
//!         Request::Masked { a: "g".into(), b: "g".into(), mask: "g".into() },
//!     ],
//! };
//! let mut service = SpgemmService::new(ServiceConfig {
//!     policy: DispatchPolicy::Adaptive,
//!     calibration: Some(Calibration::reference()),
//!     threads: Some(2),
//!     ..ServiceConfig::default()
//! });
//! let report = service.serve(&batch).unwrap();
//! assert_eq!(report.total_requests, 2);
//! println!("{}", serde_json::to_string_pretty(&report).unwrap());
//! ```

mod backend;
pub mod cache;
pub mod dispatch;
pub mod request;
pub mod service;

pub use backend::Backend;
pub use cache::{OperandCache, PreparedOperand};
pub use dispatch::{model_cost, AdaptiveDispatcher, Calibration, DispatchPolicy, TaskFeatures};
pub use request::{Batch, OperandDef, OperandSpec, Request};
pub use service::{BackendSteps, BatchReport, RequestReport, ServiceConfig, SpgemmService};

use std::fmt;

/// Errors from batch parsing, operand resolution, or shape validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The batch JSON could not be parsed.
    Parse(String),
    /// An operand failed to build or resolve (unknown name, duplicate
    /// name, unreadable file).
    Operand(String),
    /// Request shapes are incompatible.
    Shape(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(msg) => write!(f, "batch parse error: {msg}"),
            ServeError::Operand(msg) => write!(f, "operand error: {msg}"),
            ServeError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything a serving client usually imports.
pub mod prelude {
    pub use crate::request::{Batch, OperandDef, OperandSpec, Request};
    pub use crate::{
        AdaptiveDispatcher, Backend, BatchReport, Calibration, DispatchPolicy, OperandCache,
        ServeError, ServiceConfig, SpgemmService, TaskFeatures,
    };
}
