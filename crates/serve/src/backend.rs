//! The eight software SpGEMM backends as a closed, dispatchable enum.

use serde::{Deserialize, Serialize};
use sparch_dist::{DistConfig, DistCoordinator};
use sparch_sparse::{algo, Csr};
use sparch_stream::{StreamConfig, StreamingExecutor};
use std::fmt;
use std::str::FromStr;

/// One of the software SpGEMM implementations the serving layer can
/// dispatch to: the six in-memory kernels in `sparch_sparse::algo`, the
/// out-of-core streaming pipeline in `sparch_stream`, and the
/// multi-process sharded pipeline in `sparch_dist`.
///
/// SpArch's premise — and SparseZipper's, for CPU SpGEMM — is that no
/// single insertion strategy wins across matrix structures: Gustavson's
/// sparse accumulator is the all-round CPU baseline, hashing degrades on
/// power-law rows, heaps on wide rows, ESC on large intermediate counts,
/// the inner product on anything but near-dense outputs, and the outer
/// product pays a merge-tree's worth of partial-matrix traffic. The
/// streaming pipeline adds the memory axis: it is never the cheapest on
/// compute, but it is the only backend whose footprint is *bounded*, so
/// the dispatcher routes to it when a task's estimated footprint exceeds
/// the service's memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Row-wise sparse accumulator (Intel MKL's strategy).
    Gustavson,
    /// Per-row open-addressing hash table (cuSPARSE's strategy).
    Hash,
    /// Per-row k-way heap merge (HeapSpGEMM).
    Heap,
    /// Expansion–sorting–compression (CUSP's strategy).
    SortMerge,
    /// Row × column dot products (the vanilla dataflow).
    Inner,
    /// Column × row rank-1 expansion + pairwise merge (OuterSPACE).
    Outer,
    /// Panel-partitioned, memory-budgeted out-of-core pipeline
    /// (`sparch_stream` — the paper's partial-matrix merge discipline).
    Streaming,
    /// Panel-sharded multi-process pipeline (`sparch_dist`): the same
    /// panels and merge plan as `Streaming`, executed by shard worker
    /// processes with their own address spaces — the footprint escape
    /// hatch when even one streaming pipeline's resident set is too
    /// much for the serving process.
    Distributed,
}

impl Backend {
    /// Every backend, in the canonical (tie-breaking) order.
    pub const ALL: [Backend; 8] = [
        Backend::Gustavson,
        Backend::Hash,
        Backend::Heap,
        Backend::SortMerge,
        Backend::Inner,
        Backend::Outer,
        Backend::Streaming,
        Backend::Distributed,
    ];

    /// The backends that materialize everything in RAM — the universe
    /// the adaptive policy's work-model argmin runs over. `Streaming`
    /// and `Distributed` are excluded: they exist to bound memory, not
    /// to win on compute, and are selected by the dispatcher's
    /// footprint rules (or explicitly) instead.
    pub const IN_MEMORY: [Backend; 6] = [
        Backend::Gustavson,
        Backend::Hash,
        Backend::Heap,
        Backend::SortMerge,
        Backend::Inner,
        Backend::Outer,
    ];

    /// The backend's snake_case name, matching its `algo` function.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Gustavson => "gustavson",
            Backend::Hash => "hash_spgemm",
            Backend::Heap => "heap_spgemm",
            Backend::SortMerge => "sort_merge",
            Backend::Inner => "inner_product",
            Backend::Outer => "outer_product",
            Backend::Streaming => "streaming",
            Backend::Distributed => "distributed",
        }
    }

    /// Runs this backend on `a * b`.
    ///
    /// `Streaming` runs the pinned single-worker configuration
    /// (`StreamConfig::pinned`) so results are reproducible and request
    /// fan-out stays the serving layer's only parallelism axis; the
    /// service's step executor substitutes its configured memory budget
    /// via [`run_streaming_with`]. Spill I/O failure degrades to an
    /// unbounded in-core retry instead of panicking (see
    /// [`run_streaming_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` (all backends share that
    /// contract).
    pub fn run(self, a: &Csr, b: &Csr) -> Csr {
        match self {
            Backend::Gustavson => {
                // The panel kernel with a per-thread scratch: repeated
                // requests on one serving thread reuse the warm SPA
                // instead of allocating two O(b.cols()) arrays per call.
                // Bit-identical to `algo::gustavson` — the cost model's
                // asymptotics are unchanged, only the constants improve.
                thread_local! {
                    static SCRATCH: std::cell::RefCell<algo::MultiplyScratch> =
                        std::cell::RefCell::new(algo::MultiplyScratch::new());
                }
                SCRATCH.with(|s| algo::gustavson_scratch(a, b, &mut s.borrow_mut()))
            }
            Backend::Hash => algo::hash_spgemm(a, b),
            Backend::Heap => algo::heap_spgemm(a, b),
            Backend::SortMerge => algo::sort_merge(a, b),
            Backend::Inner => algo::inner_product(a, b),
            Backend::Outer => algo::outer_product(a, b),
            Backend::Streaming => run_streaming_with(StreamConfig::pinned(), a, b),
            Backend::Distributed => run_distributed_with(DistConfig::pinned(2), a, b),
        }
    }
}

/// Runs the distributed coordinator under `config`, degrading instead of
/// dying: if the fleet cannot be spawned (worker binary missing, socket
/// trouble) or a job exhausts its retries, the step falls back to the
/// in-process streaming pipeline under the *same* stream configuration.
/// The fallback is **bit-identical** by construction — the coordinator
/// and the streaming executor share the panel split, the Huffman plan
/// and the merge kernels — so degradation costs locality, never
/// correctness. (The streaming fallback itself degrades to an unbounded
/// in-core run on spill I/O failure; see [`run_streaming_with`].)
pub(crate) fn run_distributed_with(config: DistConfig, a: &Csr, b: &Csr) -> Csr {
    let stream = config.stream.clone();
    match DistCoordinator::new(config).multiply(a, b) {
        Ok((c, _)) => c,
        Err(_) => run_streaming_with(stream, a, b),
    }
}

/// Runs the streaming pipeline under `config`, degrading instead of
/// dying: if the budgeted run fails on spill I/O (unwritable temp dir,
/// disk full), it retries with an unbounded budget. The retry performs
/// no file I/O at all — partials only touch disk when the budget forces
/// them out — and reproduces the **bit-identical** result, because the
/// merge plan and fold order depend only on the partials, not on what
/// spilled. A transient disk problem therefore costs one request its
/// memory bound (what any in-memory backend would have used anyway)
/// rather than taking down the serving process.
pub(crate) fn run_streaming_with(config: StreamConfig, a: &Csr, b: &Csr) -> Csr {
    let executor = StreamingExecutor::new(config.clone());
    match executor.multiply(a, b) {
        Ok((c, _)) => c,
        Err(_) => {
            let fallback = StreamConfig {
                budget: sparch_stream::MemoryBudget::unbounded(),
                ..config
            };
            let (c, _) = StreamingExecutor::new(fallback)
                .multiply(a, b)
                .expect("unbounded streaming run performs no spill I/O");
            c
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parses both the `algo` function names and common short forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "gustavson" | "mkl" => Ok(Backend::Gustavson),
            "hash" | "hash_spgemm" => Ok(Backend::Hash),
            "heap" | "heap_spgemm" => Ok(Backend::Heap),
            "sort_merge" | "sort-merge" | "esc" => Ok(Backend::SortMerge),
            "inner" | "inner_product" => Ok(Backend::Inner),
            "outer" | "outer_product" => Ok(Backend::Outer),
            "stream" | "streaming" => Ok(Backend::Streaming),
            "dist" | "distributed" => Ok(Backend::Distributed),
            other => Err(format!(
                "unknown backend {other:?} (expected one of: gustavson, hash, heap, \
                 sort_merge, inner, outer, streaming, distributed)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn names_round_trip_through_from_str() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert!("spectral".parse::<Backend>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        for b in Backend::ALL {
            let json = serde_json::to_string(&b).unwrap();
            let back: Backend = serde_json::from_str(&json).unwrap();
            assert_eq!(b, back);
        }
    }

    #[test]
    fn every_backend_multiplies() {
        let a = gen::uniform_random(20, 24, 90, 5);
        let b = gen::uniform_random(24, 16, 80, 6);
        let reference = Backend::Gustavson.run(&a, &b);
        for backend in Backend::ALL {
            assert!(
                backend.run(&a, &b).approx_eq(&reference, 1e-9),
                "{backend} disagrees"
            );
        }
    }

    #[test]
    fn gustavson_backend_is_bit_identical_to_the_plain_kernel_across_requests() {
        // The backend runs the scratch kernel behind a thread-local; the
        // second and later requests hit warm scratch and must still be
        // bit-identical to the one-shot kernel — varying shapes so the
        // SPA both grows and shrinks its live region between requests.
        for seed in 0..6u64 {
            let cols = [16, 64, 8, 96, 24, 40][seed as usize];
            let a = gen::uniform_random(20, 24, 90, seed);
            let b = gen::uniform_random(24, cols, 80, seed + 100);
            assert_eq!(
                Backend::Gustavson.run(&a, &b),
                sparch_sparse::algo::gustavson(&a, &b),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn streaming_spill_failure_degrades_to_in_core() {
        // A spill_dir nested under a regular file is unwritable, so the
        // zero-budget run fails on its very first spill; the fallback
        // must still produce the exact product (and not panic).
        let blocker =
            std::env::temp_dir().join(format!("sparch_spill_blocker_{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let a = gen::uniform_random(24, 24, 100, 3);
        let config = StreamConfig {
            budget: sparch_stream::MemoryBudget::from_bytes(0),
            spill_dir: Some(blocker.clone()),
            ..StreamConfig::pinned()
        };
        let c = run_streaming_with(config, &a, &a);
        assert!(c.approx_eq(&Backend::Gustavson.run(&a, &a), 1e-9));
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn in_memory_is_all_minus_the_footprint_backends() {
        assert_eq!(Backend::IN_MEMORY.len() + 2, Backend::ALL.len());
        assert!(!Backend::IN_MEMORY.contains(&Backend::Streaming));
        assert!(!Backend::IN_MEMORY.contains(&Backend::Distributed));
        assert!(Backend::ALL.contains(&Backend::Streaming));
        assert!(Backend::ALL.contains(&Backend::Distributed));
        for b in Backend::IN_MEMORY {
            assert!(Backend::ALL.contains(&b));
        }
    }

    #[test]
    fn distributed_backend_degrades_to_streaming_when_no_worker_exists() {
        // Point the coordinator at a worker binary that does not exist:
        // the fleet cannot spawn, and the step must fall back to the
        // in-process pipeline with the same (bit-identical) result.
        let a = gen::uniform_random(20, 24, 90, 5);
        let b = gen::uniform_random(24, 16, 80, 6);
        let config = sparch_dist::DistConfig {
            worker: Some(std::path::PathBuf::from("/nonexistent/sparch-dist-worker")),
            ..sparch_dist::DistConfig::pinned(2)
        };
        let c = run_distributed_with(config, &a, &b);
        assert_eq!(
            c,
            run_streaming_with(StreamConfig::pinned(), &a, &b),
            "degraded result must be bit-identical to the streaming pipeline"
        );
    }
}
