//! The six software SpGEMM backends as a closed, dispatchable enum.

use serde::{Deserialize, Serialize};
use sparch_sparse::{algo, Csr};
use std::fmt;
use std::str::FromStr;

/// One of the software SpGEMM algorithms in `sparch_sparse::algo`.
///
/// SpArch's premise — and SparseZipper's, for CPU SpGEMM — is that no
/// single insertion strategy wins across matrix structures: Gustavson's
/// sparse accumulator is the all-round CPU baseline, hashing degrades on
/// power-law rows, heaps on wide rows, ESC on large intermediate counts,
/// the inner product on anything but near-dense outputs, and the outer
/// product pays a merge-tree's worth of partial-matrix traffic. The
/// serving layer treats them as interchangeable implementations of
/// `C = A * B` and picks per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Row-wise sparse accumulator (Intel MKL's strategy).
    Gustavson,
    /// Per-row open-addressing hash table (cuSPARSE's strategy).
    Hash,
    /// Per-row k-way heap merge (HeapSpGEMM).
    Heap,
    /// Expansion–sorting–compression (CUSP's strategy).
    SortMerge,
    /// Row × column dot products (the vanilla dataflow).
    Inner,
    /// Column × row rank-1 expansion + pairwise merge (OuterSPACE).
    Outer,
}

impl Backend {
    /// Every backend, in the canonical (tie-breaking) order.
    pub const ALL: [Backend; 6] = [
        Backend::Gustavson,
        Backend::Hash,
        Backend::Heap,
        Backend::SortMerge,
        Backend::Inner,
        Backend::Outer,
    ];

    /// The backend's snake_case name, matching its `algo` function.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Gustavson => "gustavson",
            Backend::Hash => "hash_spgemm",
            Backend::Heap => "heap_spgemm",
            Backend::SortMerge => "sort_merge",
            Backend::Inner => "inner_product",
            Backend::Outer => "outer_product",
        }
    }

    /// Runs this backend on `a * b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` (all backends share that contract).
    pub fn run(self, a: &Csr, b: &Csr) -> Csr {
        match self {
            Backend::Gustavson => algo::gustavson(a, b),
            Backend::Hash => algo::hash_spgemm(a, b),
            Backend::Heap => algo::heap_spgemm(a, b),
            Backend::SortMerge => algo::sort_merge(a, b),
            Backend::Inner => algo::inner_product(a, b),
            Backend::Outer => algo::outer_product(a, b),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parses both the `algo` function names and common short forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "gustavson" | "mkl" => Ok(Backend::Gustavson),
            "hash" | "hash_spgemm" => Ok(Backend::Hash),
            "heap" | "heap_spgemm" => Ok(Backend::Heap),
            "sort_merge" | "sort-merge" | "esc" => Ok(Backend::SortMerge),
            "inner" | "inner_product" => Ok(Backend::Inner),
            "outer" | "outer_product" => Ok(Backend::Outer),
            other => Err(format!(
                "unknown backend {other:?} (expected one of: gustavson, hash, heap, \
                 sort_merge, inner, outer)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn names_round_trip_through_from_str() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert!("spectral".parse::<Backend>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        for b in Backend::ALL {
            let json = serde_json::to_string(&b).unwrap();
            let back: Backend = serde_json::from_str(&json).unwrap();
            assert_eq!(b, back);
        }
    }

    #[test]
    fn every_backend_multiplies() {
        let a = gen::uniform_random(20, 24, 90, 5);
        let b = gen::uniform_random(24, 16, 80, 6);
        let reference = Backend::Gustavson.run(&a, &b);
        for backend in Backend::ALL {
            assert!(
                backend.run(&a, &b).approx_eq(&reference, 1e-9),
                "{backend} disagrees"
            );
        }
    }
}
