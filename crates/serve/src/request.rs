//! Typed serving requests and the batch container.
//!
//! A [`Batch`] is the unit of work a client hands to
//! [`SpgemmService`](crate::SpgemmService): a set of named operands (each
//! a deterministic generator [`Recipe`] or a Matrix Market file) plus a
//! list of [`Request`]s referencing them by name. Naming operands is what
//! makes the operand cache effective — a thousand requests over eight
//! operands pay for eight preparations.
//!
//! The JSON wire format is the externally-tagged serde layout:
//!
//! ```json
//! {
//!   "operands": [
//!     {"name": "g", "spec": {"Gen": {"recipe": {"Rmat": {"n": 64, "avg_degree": 4}}, "seed": 1}}}
//!   ],
//!   "requests": [
//!     {"Single": {"a": "g", "b": "g"}},
//!     {"Chain": {"operands": ["g", "g", "g"]}},
//!     {"Power": {"a": "g", "k": 3, "threshold": 0.0}},
//!     {"Masked": {"a": "g", "b": "g", "mask": "g"}}
//!   ]
//! }
//! ```

use crate::ServeError;
use serde::{Deserialize, Serialize};
use sparch_sparse::gen::Recipe;
use sparch_sparse::{mm, Csr};

/// Where an operand's matrix comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperandSpec {
    /// A deterministic synthetic generator recipe.
    Gen {
        /// The generator recipe.
        recipe: Recipe,
        /// Generator seed.
        seed: u64,
    },
    /// A Matrix Market file on disk.
    Mtx {
        /// Path to the `.mtx` file.
        path: String,
    },
}

impl OperandSpec {
    /// Materializes the operand.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures for [`OperandSpec::Mtx`]
    /// operands; generator recipes cannot fail.
    pub fn build(&self) -> Result<Csr, ServeError> {
        match self {
            OperandSpec::Gen { recipe, seed } => Ok(recipe.build(*seed)),
            OperandSpec::Mtx { path } => mm::read_file(path)
                .map(|coo| coo.to_csr())
                .map_err(|e| ServeError::Operand(format!("reading {path}: {e}"))),
        }
    }
}

/// A named operand in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperandDef {
    /// The name requests use to reference this operand.
    pub name: String,
    /// Where the matrix comes from.
    pub spec: OperandSpec,
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// `C = A * B`.
    Single {
        /// Left operand name.
        a: String,
        /// Right operand name.
        b: String,
    },
    /// Left-to-right chained multiply `C = M_0 * M_1 * … * M_n`
    /// (at least two operands).
    Chain {
        /// Operand names, in multiplication order.
        operands: Vec<String>,
    },
    /// Matrix power `C = A^k` with optional re-sparsification: after each
    /// multiply, entries with `|v| < threshold` are pruned (the MCL-style
    /// densification guard). `threshold = 0` keeps everything.
    Power {
        /// The (square) operand name.
        a: String,
        /// The exponent (≥ 1).
        k: u32,
        /// Re-sparsification threshold (0 disables pruning).
        threshold: f64,
    },
    /// Masked multiply `C = (A * B) ∘ M`: the product filtered and scaled
    /// by the mask's stored entries (the triangle-counting kernel).
    Masked {
        /// Left operand name.
        a: String,
        /// Right operand name.
        b: String,
        /// Mask operand name (shape `A.rows × B.cols`).
        mask: String,
    },
}

impl Request {
    /// The request kind as a short label for telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Single { .. } => "single",
            Request::Chain { .. } => "chain",
            Request::Power { .. } => "power",
            Request::Masked { .. } => "masked",
        }
    }

    /// Every operand name this request references, in access order.
    pub fn operand_names(&self) -> Vec<&str> {
        match self {
            Request::Single { a, b } => vec![a, b],
            Request::Chain { operands } => operands.iter().map(String::as_str).collect(),
            Request::Power { a, .. } => vec![a],
            Request::Masked { a, b, mask } => vec![a, b, mask],
        }
    }
}

/// A batch of requests over a shared operand set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// The named operands.
    pub operands: Vec<OperandDef>,
    /// The requests, in submission order.
    pub requests: Vec<Request>,
}

impl Batch {
    /// Parses a batch from its JSON wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Parse`] on malformed JSON or schema
    /// mismatches.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        serde_json::from_str(text).map_err(|e| ServeError::Parse(e.to_string()))
    }

    /// Renders the batch as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("batches always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        Batch {
            operands: vec![
                OperandDef {
                    name: "g".into(),
                    spec: OperandSpec::Gen {
                        recipe: Recipe::Rmat {
                            n: 64,
                            avg_degree: 4,
                        },
                        seed: 1,
                    },
                },
                OperandDef {
                    name: "u".into(),
                    spec: OperandSpec::Gen {
                        recipe: Recipe::Uniform {
                            rows: 64,
                            cols: 64,
                            nnz: 256,
                        },
                        seed: 2,
                    },
                },
            ],
            requests: vec![
                Request::Single {
                    a: "g".into(),
                    b: "u".into(),
                },
                Request::Chain {
                    operands: vec!["g".into(), "u".into(), "g".into()],
                },
                Request::Power {
                    a: "g".into(),
                    k: 3,
                    threshold: 1e-3,
                },
                Request::Masked {
                    a: "g".into(),
                    b: "g".into(),
                    mask: "u".into(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let batch = sample_batch();
        let back = Batch::from_json(&batch.to_json()).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Batch::from_json("{").is_err());
        assert!(Batch::from_json("{\"operands\": []}").is_err());
        assert!(Batch::from_json("{\"operands\": [], \"requests\": [{\"Warp\": {}}]}").is_err());
    }

    #[test]
    fn operand_names_follow_access_order() {
        let batch = sample_batch();
        assert_eq!(batch.requests[0].operand_names(), vec!["g", "u"]);
        assert_eq!(batch.requests[1].operand_names(), vec!["g", "u", "g"]);
        assert_eq!(batch.requests[2].operand_names(), vec!["g"]);
        assert_eq!(batch.requests[3].operand_names(), vec!["g", "g", "u"]);
        assert_eq!(batch.requests[3].kind(), "masked");
    }

    #[test]
    fn gen_spec_builds_deterministically() {
        let spec = OperandSpec::Gen {
            recipe: Recipe::Uniform {
                rows: 32,
                cols: 32,
                nnz: 100,
            },
            seed: 7,
        };
        assert_eq!(spec.build().unwrap(), spec.build().unwrap());
    }

    #[test]
    fn missing_mtx_file_is_an_error() {
        let spec = OperandSpec::Mtx {
            path: "/nonexistent/sparch-test.mtx".into(),
        };
        assert!(matches!(spec.build(), Err(ServeError::Operand(_))));
    }
}
