//! Backend selection: structural features, a deterministic per-backend
//! work model, a measured calibration table, and the dispatcher.
//!
//! The dispatcher mirrors the paper's core observation at the software
//! level: the right SpGEMM strategy is a function of measured matrix
//! structure. For each task it computes [`TaskFeatures`] (a superset of
//! `sparch_sparse::stats::TaskStats` — multiply count, output size,
//! compression factor, occupancy), prices every backend with a
//! deterministic analytic work model ([`model_cost`]), scales by a
//! per-backend [`Calibration`] table measured once at service start, and
//! picks the cheapest. A [`DispatchPolicy::Fixed`] policy bypasses the
//! choice (but still records the model cost) for reproducible runs.

use crate::cache::PreparedOperand;
use crate::Backend;
use serde::{Deserialize, Serialize};
use sparch_sparse::stats::TaskStats;
use sparch_sparse::{Csc, Csr};
use std::fmt;
use std::str::FromStr;

/// Structural features of one SpGEMM task `C = A * B`, as consumed by the
/// work model. Building them costs one symbolic pass (≈ the multiply
/// count), which is the price of modeling; the per-matrix parts come free
/// from the operand cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskFeatures {
    /// Rows of `A`.
    pub a_rows: usize,
    /// Columns of `B`.
    pub b_cols: usize,
    /// Stored entries of `A`.
    pub a_nnz: usize,
    /// Stored entries of `B`.
    pub b_nnz: usize,
    /// Rows of `A` with at least one entry.
    pub a_nonempty_rows: usize,
    /// Columns of `B` with at least one entry.
    pub b_nonempty_cols: usize,
    /// Scalar multiplications (`M`).
    pub multiplies: u64,
    /// Non-zeros of the output.
    pub output_nnz: u64,
    /// `multiplies / output_nnz` (the paper's condensing headroom).
    pub compression_factor: f64,
    /// Occupied columns of `A` — the outer product's partial-matrix count.
    pub occupied_cols: usize,
    /// Estimated bytes an in-memory backend needs live at once: both
    /// operands plus the output, at 12 bytes per stored entry and 8 per
    /// row pointer ([`Csr::estimated_bytes`]-style accounting). The
    /// dispatcher compares this against the service's memory budget to
    /// decide when a task must go out-of-core.
    pub estimated_footprint_bytes: u64,
}

/// The in-memory footprint estimate shared by every measurement path:
/// `A` + `B` + the (symbolically exact) output.
fn footprint_bytes(a_bytes: u64, b_bytes: u64, a_rows: usize, output_nnz: u64) -> u64 {
    a_bytes + b_bytes + output_nnz * 12 + (a_rows as u64 + 1) * 8
}

impl TaskFeatures {
    /// Measures the features of `a * b` where both operands come from the
    /// operand cache: the symbolic pass reuses `a`'s CSC view, and every
    /// per-matrix occupancy count comes precomputed from the cache
    /// instead of being rescanned per step.
    ///
    /// # Panics
    ///
    /// Panics if `a.csr.cols() != b.csr.rows()`.
    pub fn measure_pair(a: &PreparedOperand, b: &PreparedOperand) -> Self {
        let task = TaskStats::of_with_csc(&a.csr, &a.csc, &b.csr);
        TaskFeatures {
            a_rows: a.csr.rows(),
            b_cols: b.csr.cols(),
            a_nnz: a.csr.nnz(),
            b_nnz: b.csr.nnz(),
            a_nonempty_rows: a.nonempty_rows,
            b_nonempty_cols: b.nonempty_cols,
            multiplies: task.multiplies,
            output_nnz: task.output_nnz,
            compression_factor: task.compression_factor,
            occupied_cols: task.occupied_cols,
            estimated_footprint_bytes: footprint_bytes(
                a.csr.estimated_bytes(),
                b.csr.estimated_bytes(),
                a.csr.rows(),
                task.output_nnz,
            ),
        }
    }

    /// Measures the features of `a * b` where only the *right* operand is
    /// cached — the chained-multiply case, where `a` is a freshly
    /// materialized intermediate but `b` still comes from the cache.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.csr.rows()`.
    pub fn measure_rhs(a: &Csr, b: &PreparedOperand) -> Self {
        let task = TaskStats::of(a, &b.csr);
        TaskFeatures {
            a_rows: a.rows(),
            b_cols: b.csr.cols(),
            a_nnz: a.nnz(),
            b_nnz: b.csr.nnz(),
            a_nonempty_rows: (0..a.rows()).filter(|&r| a.row_nnz(r) > 0).count(),
            b_nonempty_cols: b.nonempty_cols,
            multiplies: task.multiplies,
            output_nnz: task.output_nnz,
            compression_factor: task.compression_factor,
            occupied_cols: task.occupied_cols,
            estimated_footprint_bytes: footprint_bytes(
                a.estimated_bytes(),
                b.csr.estimated_bytes(),
                a.rows(),
                task.output_nnz,
            ),
        }
    }

    /// Measures the features of `a * b`, reusing a cached CSC view of `a`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `a_csc` mismatches `a`.
    pub fn measure_with_csc(a: &Csr, a_csc: &Csc, b: &Csr) -> Self {
        let task = TaskStats::of_with_csc(a, a_csc, b);
        TaskFeatures::assemble(a, b, &task)
    }

    /// Measures the features of `a * b` from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn measure(a: &Csr, b: &Csr) -> Self {
        let task = TaskStats::of(a, b);
        TaskFeatures::assemble(a, b, &task)
    }

    fn assemble(a: &Csr, b: &Csr, task: &TaskStats) -> Self {
        let mut col_seen = vec![false; b.cols()];
        for &c in b.col_indices() {
            col_seen[c as usize] = true;
        }
        TaskFeatures {
            a_rows: a.rows(),
            b_cols: b.cols(),
            a_nnz: a.nnz(),
            b_nnz: b.nnz(),
            a_nonempty_rows: (0..a.rows()).filter(|&r| a.row_nnz(r) > 0).count(),
            b_nonempty_cols: col_seen.iter().filter(|&&s| s).count(),
            multiplies: task.multiplies,
            output_nnz: task.output_nnz,
            compression_factor: task.compression_factor,
            occupied_cols: task.occupied_cols,
            estimated_footprint_bytes: footprint_bytes(
                a.estimated_bytes(),
                b.estimated_bytes(),
                a.rows(),
                task.output_nnz,
            ),
        }
    }
}

/// Deterministic analytic work units for running `backend` on a task with
/// the given features. The absolute scale is arbitrary ("abstract ops");
/// only ratios matter, and [`Calibration`] maps them to seconds.
///
/// The shapes encode each algorithm's asymptotics:
///
/// * Gustavson — `M` accumulator updates plus the per-row sort of the
///   output (`O·log(avg row)`),
/// * hash — the same plus probing overhead and the table scan,
/// * heap — every popped product pays the heap's `log(row fill of A)`,
/// * sort-merge (ESC) — the global `M·log M` sort dominates,
/// * inner product — pair enumeration over non-empty rows × columns plus
///   the merge comparisons, independent of `M`,
/// * outer product — each of the `M` expanded entries crosses
///   `log(partial count)` pairwise merge levels,
/// * streaming — Gustavson per panel plus every output entry crossing the
///   Huffman merge of the default panel count: by construction never
///   cheaper than plain Gustavson, so it only wins through the
///   dispatcher's footprint rule (or an explicit fixed policy),
/// * distributed — the streaming shape plus every operand and output
///   entry crossing a socket twice (panel out, partial back): strictly
///   dominated by streaming in model units, so it is only ever selected
///   by the dispatcher's *distributed* footprint rule or explicitly.
pub fn model_cost(backend: Backend, f: &TaskFeatures) -> f64 {
    let m = f.multiplies as f64;
    let o = f.output_nnz as f64;
    // Average output-row fill (for per-row sorts), clamped ≥ 2 so its log
    // is positive.
    let avg_out = (o / f.a_nonempty_rows.max(1) as f64).max(2.0);
    match backend {
        Backend::Gustavson => m + o * avg_out.log2(),
        Backend::Hash => 1.7 * m + o * avg_out.log2(),
        Backend::Heap => {
            let avg_k = (f.a_nnz as f64 / f.a_nonempty_rows.max(1) as f64).max(1.0);
            m * (1.0 + avg_k).log2().max(1.0) + o
        }
        Backend::SortMerge => m * m.max(2.0).log2(),
        Backend::Inner => {
            let pairs = f.a_nonempty_rows as f64 * f.b_nonempty_cols as f64;
            pairs
                + f.a_nonempty_rows as f64 * f.b_nnz as f64
                + f.b_nonempty_cols as f64 * f.a_nnz as f64
        }
        Backend::Outer => m * (1.0 + (f.occupied_cols as f64).max(2.0).log2()) + o,
        Backend::Streaming => {
            let panels = sparch_stream::StreamConfig::default().panels as f64;
            m + o * avg_out.log2() + o * (1.0 + panels.max(2.0).log2())
        }
        Backend::Distributed => {
            // The streaming shape, plus wire crossings: both operands
            // ship out panel by panel and every partial ships back.
            model_cost(Backend::Streaming, f) + 2.0 * (f.a_nnz + f.b_nnz) as f64 + 2.0 * o
        }
    }
}

/// Per-backend seconds-per-model-unit, measured once at service start.
///
/// The analytic model prices backends in abstract units; this table turns
/// them into a common currency by timing each backend on two structurally
/// different probe tasks (uniform and power-law) and dividing the observed
/// wall-clock by the modeled units. [`Calibration::reference`] is the
/// pinned identity table for reproducible runs and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Seconds per model unit, indexed like [`Backend::ALL`].
    pub seconds_per_unit: Vec<f64>,
}

impl Calibration {
    /// The identity table: every backend costs 1.0 per model unit, so the
    /// dispatcher reduces to the pure analytic model. Fully reproducible.
    pub fn reference() -> Self {
        Calibration {
            seconds_per_unit: vec![1.0; Backend::ALL.len()],
        }
    }

    /// Measures the table by running every backend on two probe tasks
    /// (uniform 96×96 and R-MAT 96) and averaging observed seconds per
    /// model unit. Wall-clock based, so *not* run-to-run reproducible —
    /// pass [`Calibration::reference`] to a service when determinism
    /// matters more than fidelity.
    pub fn measure(seed: u64) -> Self {
        use sparch_sparse::gen;
        let probes = [
            (
                gen::uniform_random(96, 96, 96 * 6, seed),
                gen::uniform_random(96, 96, 96 * 6, seed + 1),
            ),
            (
                gen::rmat_graph500(96, 6, seed + 2),
                gen::rmat_graph500(96, 6, seed + 3),
            ),
        ];
        let mut table = Vec::with_capacity(Backend::ALL.len());
        for backend in Backend::ALL {
            let mut per_unit = 0.0;
            for (a, b) in &probes {
                let feats = TaskFeatures::measure(a, b);
                let units = model_cost(backend, &feats).max(1.0);
                let t0 = std::time::Instant::now();
                let _ = backend.run(a, b);
                per_unit += t0.elapsed().as_secs_f64() / units;
            }
            table.push(per_unit / probes.len() as f64);
        }
        Calibration {
            seconds_per_unit: table,
        }
    }

    /// Seconds per model unit for `backend`.
    pub fn seconds_for(&self, backend: Backend) -> f64 {
        let idx = Backend::ALL
            .iter()
            .position(|&b| b == backend)
            .expect("Backend::ALL covers every variant");
        self.seconds_per_unit.get(idx).copied().unwrap_or(1.0)
    }
}

/// How the service picks a backend per multiply step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Always use the given backend (reproducible; telemetry still records
    /// the model cost, so fixed runs are comparable to adaptive ones).
    Fixed(Backend),
    /// Pick the cheapest backend per step under the calibrated work model.
    Adaptive,
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::Fixed(b) => write!(f, "fixed:{b}"),
            DispatchPolicy::Adaptive => f.write_str("adaptive"),
        }
    }
}

impl FromStr for DispatchPolicy {
    type Err = String;

    /// Parses `adaptive`, `fixed:<backend>`, or a bare backend name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("adaptive") {
            return Ok(DispatchPolicy::Adaptive);
        }
        let name = s.strip_prefix("fixed:").unwrap_or(s);
        name.parse::<Backend>().map(DispatchPolicy::Fixed)
    }
}

/// Chooses a backend per multiply step from task features, a policy, and
/// a calibration table. Pure and deterministic: the same features, policy
/// and table always produce the same choice, regardless of thread count.
///
/// When a memory budget is configured
/// ([`AdaptiveDispatcher::with_memory_budget`]), tasks whose
/// [`TaskFeatures::estimated_footprint_bytes`] exceeds it are routed to
/// [`Backend::Streaming`] *before* the policy applies — an in-memory
/// backend would materialize more than the budget allows, so the budget
/// guard overrides both fixed and adaptive policies. A second, larger
/// threshold ([`AdaptiveDispatcher::with_distributed_threshold`])
/// escalates past-streaming tasks to [`Backend::Distributed`]: when even
/// one pipeline's resident panels are too much for the serving process,
/// the work moves to shard worker processes with their own address
/// spaces.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDispatcher {
    policy: DispatchPolicy,
    calibration: Calibration,
    memory_budget: Option<u64>,
    distributed_threshold: Option<u64>,
}

impl AdaptiveDispatcher {
    /// A dispatcher with the given policy and calibration table, and no
    /// memory budget (nothing is ever routed out-of-core).
    pub fn new(policy: DispatchPolicy, calibration: Calibration) -> Self {
        AdaptiveDispatcher {
            policy,
            calibration,
            memory_budget: None,
            distributed_threshold: None,
        }
    }

    /// Enables footprint routing: tasks estimated to need more than
    /// `bytes` of live memory go to [`Backend::Streaming`].
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Enables distributed routing: tasks estimated to need more than
    /// `bytes` go to [`Backend::Distributed`]. Checked before the
    /// streaming budget, so set it at or above `with_memory_budget`'s
    /// value — the biggest tasks shard out, mid-size tasks stream, and
    /// everything else stays in memory.
    pub fn with_distributed_threshold(mut self, bytes: u64) -> Self {
        self.distributed_threshold = Some(bytes);
        self
    }

    /// The dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The calibration table.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Replaces the calibration table — the refresh hook for online
    /// calibration and `recalibrate()`. Call *between* batches only:
    /// dispatch decisions inside one batch must share a frozen table so
    /// the choices stay thread-count-invariant.
    pub fn set_calibration(&mut self, calibration: Calibration) {
        self.calibration = calibration;
    }

    /// The configured memory budget in bytes, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.memory_budget
    }

    /// The configured distributed-routing threshold in bytes, if any.
    pub fn distributed_threshold(&self) -> Option<u64> {
        self.distributed_threshold
    }

    /// Picks the backend for one multiply step and returns it with its
    /// calibrated model cost. The footprint rule (see the type docs)
    /// applies first; under the adaptive policy the work-model argmin
    /// then runs over [`Backend::IN_MEMORY`], with ties breaking toward
    /// the earlier entry.
    pub fn choose(&self, features: &TaskFeatures) -> (Backend, f64) {
        if let Some(threshold) = self.distributed_threshold {
            if features.estimated_footprint_bytes > threshold {
                return (
                    Backend::Distributed,
                    self.calibrated_cost(Backend::Distributed, features),
                );
            }
        }
        if let Some(budget) = self.memory_budget {
            if features.estimated_footprint_bytes > budget {
                return (
                    Backend::Streaming,
                    self.calibrated_cost(Backend::Streaming, features),
                );
            }
        }
        match self.policy {
            DispatchPolicy::Fixed(backend) => (backend, self.calibrated_cost(backend, features)),
            DispatchPolicy::Adaptive => {
                let mut best = Backend::IN_MEMORY[0];
                let mut best_cost = self.calibrated_cost(best, features);
                for &backend in &Backend::IN_MEMORY[1..] {
                    let cost = self.calibrated_cost(backend, features);
                    if cost < best_cost {
                        best = backend;
                        best_cost = cost;
                    }
                }
                (best, best_cost)
            }
        }
    }

    /// The calibrated model cost of running `backend` on `features`.
    pub fn calibrated_cost(&self, backend: Backend, features: &TaskFeatures) -> f64 {
        model_cost(backend, features) * self.calibration.seconds_for(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn features(seed: u64) -> TaskFeatures {
        let a = gen::rmat_graph500(64, 4, seed);
        let b = gen::rmat_graph500(64, 4, seed + 10);
        TaskFeatures::measure(&a, &b)
    }

    #[test]
    fn adaptive_choice_is_never_worse_than_any_fixed_backend() {
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference());
        for seed in 0..10 {
            let f = features(seed);
            let (_, adaptive_cost) = d.choose(&f);
            for backend in Backend::ALL {
                assert!(
                    adaptive_cost <= d.calibrated_cost(backend, &f) + 1e-9,
                    "adaptive lost to {backend} at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn fixed_policy_always_returns_its_backend() {
        let d = AdaptiveDispatcher::new(
            DispatchPolicy::Fixed(Backend::SortMerge),
            Calibration::reference(),
        );
        for seed in 0..5 {
            assert_eq!(d.choose(&features(seed)).0, Backend::SortMerge);
        }
    }

    #[test]
    fn features_with_cached_csc_match_direct_measurement() {
        let a = gen::uniform_random(48, 40, 300, 3);
        let b = gen::uniform_random(40, 56, 280, 4);
        let csc = a.to_csc();
        assert_eq!(
            TaskFeatures::measure(&a, &b),
            TaskFeatures::measure_with_csc(&a, &csc, &b)
        );
        assert_eq!(
            TaskFeatures::measure(&a, &b),
            TaskFeatures::measure_pair(
                &PreparedOperand::prepare(a.clone()),
                &PreparedOperand::prepare(b.clone())
            )
        );
    }

    #[test]
    fn inner_product_wins_only_when_pair_space_is_tiny() {
        // 4x4 nearly dense: the pair space is minuscule, sort_merge pays
        // M log M, and inner's comparison count is small.
        let a = gen::uniform_random(4, 4, 12, 1);
        let b = gen::uniform_random(4, 4, 12, 2);
        let small = TaskFeatures::measure(&a, &b);
        // 512-row power-law squares: the pair space is enormous.
        let a = gen::rmat_graph500(512, 8, 3);
        let big = TaskFeatures::measure(&a, &a);
        assert!(model_cost(Backend::Inner, &small) < model_cost(Backend::Inner, &big));
        // On the big task, inner must be the most expensive class.
        for backend in Backend::ALL {
            if backend != Backend::Inner {
                assert!(
                    model_cost(backend, &big) < model_cost(Backend::Inner, &big),
                    "{backend} should beat inner on a large sparse task"
                );
            }
        }
    }

    #[test]
    fn footprint_estimate_counts_operands_and_output() {
        let a = gen::uniform_random(48, 40, 300, 3);
        let b = gen::uniform_random(40, 56, 280, 4);
        let f = TaskFeatures::measure(&a, &b);
        let expected = a.estimated_bytes()
            + b.estimated_bytes()
            + f.output_nnz * 12
            + (a.rows() as u64 + 1) * 8;
        assert_eq!(f.estimated_footprint_bytes, expected);
        assert!(f.estimated_footprint_bytes > 0);
    }

    #[test]
    fn streaming_never_undercuts_gustavson_in_the_model() {
        for seed in 0..10 {
            let f = features(seed);
            assert!(
                model_cost(Backend::Streaming, &f) >= model_cost(Backend::Gustavson, &f),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn memory_budget_routes_oversized_tasks_to_streaming() {
        let f = features(0);
        // Budget below the task's footprint: streaming, under any policy.
        for policy in [
            DispatchPolicy::Adaptive,
            DispatchPolicy::Fixed(Backend::Hash),
        ] {
            let d = AdaptiveDispatcher::new(policy, Calibration::reference())
                .with_memory_budget(f.estimated_footprint_bytes - 1);
            assert_eq!(d.choose(&f).0, Backend::Streaming, "policy {policy}");
        }
        // Budget at (or above) the footprint: the policy decides, and the
        // adaptive argmin never lands on streaming by itself.
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference())
            .with_memory_budget(f.estimated_footprint_bytes);
        assert_ne!(d.choose(&f).0, Backend::Streaming);
        // No budget: footprint is ignored entirely.
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference());
        assert_eq!(d.memory_budget(), None);
        assert_ne!(d.choose(&f).0, Backend::Streaming);
    }

    #[test]
    fn distributed_threshold_routes_the_biggest_tasks_out_of_process() {
        let f = features(0);
        // Threshold below the task's footprint: distributed, under any
        // policy — the shard fleet is the only place the step fits.
        for policy in [
            DispatchPolicy::Adaptive,
            DispatchPolicy::Fixed(Backend::Hash),
        ] {
            let d = AdaptiveDispatcher::new(policy, Calibration::reference())
                .with_distributed_threshold(f.estimated_footprint_bytes - 1);
            assert_eq!(d.choose(&f).0, Backend::Distributed, "policy {policy}");
        }
        // The distributed threshold outranks the memory budget: a step
        // over both goes out of process, one over only the budget streams
        // in-process.
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference())
            .with_memory_budget(f.estimated_footprint_bytes - 1)
            .with_distributed_threshold(f.estimated_footprint_bytes - 1);
        assert_eq!(d.choose(&f).0, Backend::Distributed);
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference())
            .with_memory_budget(f.estimated_footprint_bytes - 1)
            .with_distributed_threshold(f.estimated_footprint_bytes);
        assert_eq!(d.choose(&f).0, Backend::Streaming);
        assert_eq!(d.distributed_threshold(), Some(f.estimated_footprint_bytes));
        // Shipping operands over sockets is never modeled as free: the
        // adaptive argmin must not land on distributed by itself.
        assert!(model_cost(Backend::Distributed, &f) > model_cost(Backend::Streaming, &f));
        let d = AdaptiveDispatcher::new(DispatchPolicy::Adaptive, Calibration::reference());
        assert_eq!(d.distributed_threshold(), None);
        assert_ne!(d.choose(&f).0, Backend::Distributed);
    }

    #[test]
    fn calibration_reference_is_identity() {
        let c = Calibration::reference();
        for backend in Backend::ALL {
            assert_eq!(c.seconds_for(backend), 1.0);
        }
    }

    #[test]
    fn measured_calibration_is_positive_and_serializes() {
        let c = Calibration::measure(11);
        assert_eq!(c.seconds_per_unit.len(), Backend::ALL.len());
        assert!(c.seconds_per_unit.iter().all(|&s| s > 0.0 && s.is_finite()));
        let json = serde_json::to_string(&c).unwrap();
        let back: Calibration = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            "adaptive".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::Adaptive
        );
        assert_eq!(
            "fixed:heap".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::Fixed(Backend::Heap)
        );
        assert_eq!(
            "gustavson".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::Fixed(Backend::Gustavson)
        );
        assert!("fixed:quantum".parse::<DispatchPolicy>().is_err());
        assert_eq!(DispatchPolicy::Adaptive.to_string(), "adaptive");
        assert_eq!(
            DispatchPolicy::Fixed(Backend::Hash).to_string(),
            "fixed:hash_spgemm"
        );
    }
}
