//! The calibration loop, end to end (ISSUE 10):
//!
//! * online calibration demonstrably shrinks the mean |predicted −
//!   measured| step cost over a warm batch — the reference table prices
//!   steps in raw model units ("seconds" off by orders of magnitude),
//!   and one EWMA fold pulls the model onto the machine's real scale;
//! * `recalibrate()` restores the pinned table and resets the age
//!   counter, and a batch served right after it is bit-identical
//!   (without timing) to one served right after service start;
//! * `auto_tune` re-plans streaming knobs per step without changing a
//!   single output bit relative to the in-memory baseline;
//! * the mispredict rate is a well-formed fraction.

use sparch_serve::prelude::*;
use sparch_sparse::gen::Recipe;

fn operand(name: &str, recipe: Recipe, seed: u64) -> OperandDef {
    OperandDef {
        name: name.into(),
        spec: OperandSpec::Gen { recipe, seed },
    }
}

/// A small mixed batch: two operand structures, all four request kinds.
fn batch() -> Batch {
    Batch {
        operands: vec![
            operand(
                "g",
                Recipe::Rmat {
                    n: 64,
                    avg_degree: 4,
                },
                1,
            ),
            operand(
                "u",
                Recipe::Uniform {
                    rows: 64,
                    cols: 64,
                    nnz: 400,
                },
                2,
            ),
        ],
        requests: vec![
            Request::Single {
                a: "g".into(),
                b: "u".into(),
            },
            Request::Chain {
                operands: vec!["g".into(), "u".into(), "g".into()],
            },
            Request::Power {
                a: "g".into(),
                k: 3,
                threshold: 0.0,
            },
            Request::Masked {
                a: "g".into(),
                b: "g".into(),
                mask: "u".into(),
            },
        ],
    }
}

#[test]
fn online_calibration_shrinks_cost_error_over_a_warm_batch() {
    let mut service = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Fixed(Backend::Gustavson),
        threads: Some(2),
        calibration: Some(Calibration::reference()),
        online_calibration: Some(0.5),
        ..ServiceConfig::default()
    });
    let cold = service.serve(&batch()).expect("cold batch");
    let warm = service.serve(&batch()).expect("warm batch");

    // The reference table prices steps at 1 s/model-unit — off from the
    // real machine by orders of magnitude — so one fold of measured
    // feedback must collapse the error, not just nudge it.
    assert!(cold.mean_abs_cost_error_seconds > 0.0);
    assert!(
        warm.mean_abs_cost_error_seconds < cold.mean_abs_cost_error_seconds * 0.1,
        "online calibration did not shrink the cost error: cold {} warm {}",
        cold.mean_abs_cost_error_seconds,
        warm.mean_abs_cost_error_seconds
    );

    // The fold really rewrote the dispatcher's table.
    assert_ne!(
        *service.dispatcher().calibration(),
        Calibration::reference()
    );

    // Age counts batches since the last full measurement; folds don't
    // reset it.
    assert_eq!(cold.calibration_age, 0);
    assert_eq!(warm.calibration_age, 1);
}

#[test]
fn recalibrate_restores_the_pinned_table_and_determinism() {
    let mut service = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Fixed(Backend::Gustavson),
        threads: Some(2),
        calibration: Some(Calibration::reference()),
        online_calibration: Some(1.0),
        ..ServiceConfig::default()
    });

    // Warm the operand cache, then reset so the reference table is live.
    service.serve(&batch()).expect("warmup");
    service.recalibrate();
    assert_eq!(service.calibration_age(), 0);
    assert_eq!(
        *service.dispatcher().calibration(),
        Calibration::reference()
    );

    let first = service.serve(&batch()).expect("first");
    let drifted = service.serve(&batch()).expect("drifted");
    service.recalibrate();
    let refreshed = service.serve(&batch()).expect("refreshed");

    // Between folds the model costs track the machine (tiny per-unit
    // estimates), after recalibrate they are back on the reference scale.
    assert_eq!(first.calibration_age, 0);
    assert_eq!(drifted.calibration_age, 1);
    assert_eq!(refreshed.calibration_age, 0);
    assert!(drifted.total_model_cost < first.total_model_cost);
    assert_eq!(
        refreshed.without_timing(),
        first.without_timing(),
        "a batch after recalibrate must be bit-identical to one after start"
    );
}

#[test]
fn auto_tuned_streaming_matches_the_in_memory_baseline() {
    // Budget of one byte: every step routes to streaming, and auto_tune
    // re-plans its knobs per task.
    let mut tuned = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Adaptive,
        threads: Some(2),
        calibration: Some(Calibration::reference()),
        memory_budget: Some(1),
        auto_tune: true,
        ..ServiceConfig::default()
    });
    let report = tuned.serve(&batch()).expect("auto-tuned batch");
    assert!(report.total_steps > 0);
    assert!(report
        .requests
        .iter()
        .flat_map(|r| &r.backends)
        .all(|b| b == "streaming"));

    let mut baseline = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Fixed(Backend::Gustavson),
        threads: Some(2),
        calibration: Some(Calibration::reference()),
        ..ServiceConfig::default()
    });
    let expected = baseline.serve(&batch()).expect("baseline batch");
    for (r, e) in report.requests.iter().zip(&expected.requests) {
        assert_eq!(r.output_nnz, e.output_nnz, "request {}", r.index);
        assert_eq!(r.output_rows, e.output_rows, "request {}", r.index);
        assert_eq!(r.output_cols, e.output_cols, "request {}", r.index);
    }

    // The planner is deterministic, so the model-driven view stays
    // bit-identical across worker counts even with auto_tune on.
    let view = report.without_timing();
    let mut other = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Adaptive,
        threads: Some(1),
        calibration: Some(Calibration::reference()),
        memory_budget: Some(1),
        auto_tune: true,
        ..ServiceConfig::default()
    });
    let mut single = other.serve(&batch()).expect("single-thread batch");
    single.threads = view.threads; // the only legitimately varying model field
    assert_eq!(single.without_timing(), view);
}

#[test]
fn mispredict_rate_is_a_well_formed_fraction() {
    let mut service = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Adaptive,
        threads: Some(2),
        calibration: Some(Calibration::reference()),
        ..ServiceConfig::default()
    });
    let report = service.serve(&batch()).expect("batch");
    let rate = report.mispredict_rate();
    assert!((0.0..=1.0).contains(&rate), "rate {rate}");
    // Every step carries a (model, actual) pair for the rate to rank.
    let steps: usize = report
        .requests
        .iter()
        .map(|r| r.step_model_seconds.len())
        .sum();
    assert_eq!(steps, report.total_steps);
    assert!(report
        .requests
        .iter()
        .all(|r| r.step_model_seconds.len() == r.step_actual_seconds.len()));

    // An empty batch scores 0 by definition.
    let empty = service
        .serve(&Batch {
            operands: vec![],
            requests: vec![],
        })
        .expect("empty batch");
    assert_eq!(empty.mispredict_rate(), 0.0);
}
