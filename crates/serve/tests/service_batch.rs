//! Acceptance test for the serving layer (ISSUE 3):
//!
//! A 1000-request mixed batch (single / chained / masked / power over
//! 10 distinct operands) completes through `SpgemmService` with a
//! serializable report showing per-request backend choices and a
//! positive operand-cache hit rate, deterministic across worker counts
//! 1/2/8 under the `Fixed` policy; and the adaptive policy's total
//! model-side work is no worse than the best single fixed backend
//! by more than 10% on that batch.

use sparch_serve::prelude::*;
use sparch_sparse::gen::Recipe;

/// Ten distinct operands: eight square 64×64 with different structures
/// and seeds, plus two rectangular ones for the single-multiply mix.
fn operands() -> Vec<OperandDef> {
    let gen = |name: &str, recipe: Recipe, seed: u64| OperandDef {
        name: name.into(),
        spec: OperandSpec::Gen { recipe, seed },
    };
    vec![
        gen(
            "rmat_a",
            Recipe::Rmat {
                n: 64,
                avg_degree: 4,
            },
            11,
        ),
        gen(
            "rmat_b",
            Recipe::Rmat {
                n: 64,
                avg_degree: 6,
            },
            12,
        ),
        gen(
            "uni_a",
            Recipe::Uniform {
                rows: 64,
                cols: 64,
                nnz: 320,
            },
            13,
        ),
        gen(
            "uni_b",
            Recipe::Uniform {
                rows: 64,
                cols: 64,
                nnz: 512,
            },
            14,
        ),
        gen(
            "poisson",
            Recipe::Poisson3d {
                nx: 4,
                ny: 4,
                nz: 4,
            },
            15,
        ),
        gen(
            "banded",
            Recipe::Banded {
                n: 64,
                half_bandwidth: 2,
                extra_nnz: 64,
            },
            16,
        ),
        gen(
            "powerlaw",
            Recipe::PowerlawRows {
                n: 64,
                nnz: 400,
                alpha: 1.8,
            },
            17,
        ),
        gen(
            "blocks",
            Recipe::BlockSparse {
                rows: 64,
                cols: 64,
                block: 4,
                block_density: 0.2,
            },
            18,
        ),
        gen(
            "rect_l",
            Recipe::Uniform {
                rows: 48,
                cols: 64,
                nnz: 300,
            },
            19,
        ),
        gen(
            "rect_r",
            Recipe::Uniform {
                rows: 64,
                cols: 32,
                nnz: 250,
            },
            20,
        ),
    ]
}

/// 1000 requests cycling through all four kinds over the square
/// operands, with the rectangular pair mixed into the singles.
fn thousand_requests() -> Vec<Request> {
    let square = [
        "rmat_a", "rmat_b", "uni_a", "uni_b", "poisson", "banded", "powerlaw", "blocks",
    ];
    let sq = |i: usize| square[i % square.len()].to_string();
    (0..1000)
        .map(|i| match i % 4 {
            0 => {
                if i % 12 == 0 {
                    Request::Single {
                        a: "rect_l".into(),
                        b: sq(i),
                    }
                } else if i % 12 == 4 {
                    Request::Single {
                        a: sq(i),
                        b: "rect_r".into(),
                    }
                } else {
                    Request::Single {
                        a: sq(i),
                        b: sq(i + 1),
                    }
                }
            }
            1 => Request::Chain {
                operands: vec![sq(i), sq(i + 2), sq(i + 3)],
            },
            2 => Request::Power {
                a: sq(i),
                k: 2 + (i as u32 % 2),
                threshold: if i % 8 == 2 { 0.5 } else { 0.0 },
            },
            _ => Request::Masked {
                a: sq(i),
                b: sq(i + 1),
                mask: sq(i + 2),
            },
        })
        .collect()
}

fn batch() -> Batch {
    Batch {
        operands: operands(),
        requests: thousand_requests(),
    }
}

fn run(policy: DispatchPolicy, threads: usize) -> BatchReport {
    let mut service = SpgemmService::new(ServiceConfig {
        policy,
        threads: Some(threads),
        cache_capacity: 64,
        calibration: Some(Calibration::reference()),
        ..ServiceConfig::default()
    });
    service.serve(&batch()).expect("batch must serve")
}

#[test]
fn thousand_request_batch_is_deterministic_across_thread_counts() {
    let baseline = run(DispatchPolicy::Fixed(Backend::Gustavson), 1);
    assert_eq!(baseline.total_requests, 1000);
    assert_eq!(baseline.threads, 1);
    // Every request records its backend choice, and the operand cache
    // pays off: 10 misses for ~2250 references.
    assert!(baseline
        .requests
        .iter()
        .all(|r| r.steps == 0 || !r.backends.is_empty()));
    assert!(baseline.cache_hit_rate > 0.9, "{}", baseline.cache_hit_rate);
    assert_eq!(baseline.cache_misses, 10);

    // The report is serializable and round-trips.
    let json = serde_json::to_string(&baseline).unwrap();
    let back: BatchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(baseline, back);

    // Model-driven content is bit-identical at 2 and 8 workers.
    let view = baseline.without_timing();
    for threads in [2, 8] {
        let mut other = run(DispatchPolicy::Fixed(Backend::Gustavson), threads);
        assert_eq!(other.threads, threads);
        other.threads = view.threads; // the only legitimately varying model field
        assert_eq!(
            other.without_timing(),
            view,
            "fixed-policy report diverged at {threads} threads"
        );
    }
}

#[test]
fn adaptive_total_model_work_is_within_10_percent_of_best_fixed() {
    let adaptive = run(DispatchPolicy::Adaptive, 2);
    assert_eq!(adaptive.total_requests, 1000);
    assert!(adaptive.cache_hit_rate > 0.0);

    let mut best_fixed = f64::INFINITY;
    let mut best_name = "";
    for backend in Backend::ALL {
        // The distributed backend spawns a worker fleet per step; a
        // 1000-request batch through it is a process-spawn stress test,
        // not a dispatch-quality measurement. Its model cost strictly
        // dominates streaming, so it can never be the best fixed choice.
        if backend == Backend::Distributed {
            continue;
        }
        let report = run(DispatchPolicy::Fixed(backend), 2);
        if report.total_model_cost < best_fixed {
            best_fixed = report.total_model_cost;
            best_name = backend.name();
        }
    }
    assert!(
        adaptive.total_model_cost <= best_fixed * 1.10,
        "adaptive model work {} exceeds best fixed backend {} ({}) by more than 10%",
        adaptive.total_model_cost,
        best_name,
        best_fixed
    );

    // The adaptive policy actually exercises its freedom: more than one
    // backend appears across the batch.
    let used = adaptive
        .backend_steps
        .iter()
        .filter(|b| b.steps > 0)
        .count();
    assert!(used > 1, "adaptive dispatch collapsed to a single backend");
}
