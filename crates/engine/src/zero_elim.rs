//! The zero eliminator (paper §II-A4, Figure 6).
//!
//! After the adder folds duplicate-coordinate pairs, one element of each
//! pair is left as a zero hole. The zero eliminator compacts the stream:
//! a prefix-sum module counts the zeroes before each element
//! (`zero_count`), then a modified log₂N-layer shifter moves every element
//! left by its own count — layer `t` shifts by `2^t` when bit `t` of the
//! element's `zero_count` is set. Unlike a conventional shifter, each MUX
//! is controlled by its element's count rather than a shared signal.
//! Latency is `log₂ N` cycles for an N-element slice.

use crate::item::MergeItem;
use serde::{Deserialize, Serialize};

/// Statistics of zero-eliminator activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroElimStats {
    /// Input slices processed.
    pub invocations: u64,
    /// Elements inspected.
    pub elements_in: u64,
    /// Non-zero elements emitted.
    pub elements_out: u64,
    /// Total latency cycles charged (`log2(N)` per slice).
    pub latency_cycles: u64,
}

/// The zero-elimination unit for slices of width `N`.
///
/// # Example
///
/// ```
/// use sparch_engine::{MergeItem, ZeroEliminator};
///
/// let mut z = ZeroEliminator::new(8);
/// let dirty = vec![
///     MergeItem::new(0, 0, 1.0),
///     MergeItem::new(0, 1, 0.0), // hole left by the adder
///     MergeItem::new(0, 2, 2.0),
/// ];
/// let clean = z.eliminate(&dirty);
/// assert_eq!(clean.len(), 2);
/// assert_eq!(clean[1].value, 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ZeroEliminator {
    width: usize,
    stats: ZeroElimStats,
}

impl ZeroEliminator {
    /// Creates a zero eliminator processing slices of `width` elements.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        ZeroEliminator {
            width,
            stats: ZeroElimStats::default(),
        }
    }

    /// Slice width N.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline latency per slice: `ceil(log2 N)` shifter layers.
    pub fn latency(&self) -> u64 {
        (usize::BITS - (self.width - 1).leading_zeros()) as u64
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> ZeroElimStats {
        self.stats
    }

    /// Compacts a stream, removing elements whose value is exactly zero,
    /// using the literal layered-shifter network slice by slice.
    pub fn eliminate(&mut self, input: &[MergeItem]) -> Vec<MergeItem> {
        let mut out = Vec::with_capacity(input.len());
        for slice in input.chunks(self.width.max(1)) {
            self.stats.invocations += 1;
            self.stats.elements_in += slice.len() as u64;
            self.stats.latency_cycles += self.latency();
            let compacted = shift_network(slice);
            self.stats.elements_out += compacted.len() as u64;
            out.extend(compacted);
        }
        out
    }
}

/// The layered-shifter compaction of one slice, implemented exactly as the
/// hardware does it: exclusive prefix-sum of "is zero", then `log2 N`
/// layers of per-element MUXes shifting by 1, 2, 4, ... positions.
fn shift_network(slice: &[MergeItem]) -> Vec<MergeItem> {
    let n = slice.len();
    // Prefix-sum module: zero_count[i] = zeroes strictly before position i.
    let mut zero_count = vec![0usize; n];
    let mut running = 0usize;
    for (i, item) in slice.iter().enumerate() {
        zero_count[i] = running;
        if item.value == 0.0 {
            running += 1;
        }
    }
    // Layered shifter: slots carry (element, its residual shift amount).
    let mut slots: Vec<Option<(MergeItem, usize)>> = slice
        .iter()
        .zip(&zero_count)
        .map(|(&it, &zc)| {
            if it.value == 0.0 {
                None
            } else {
                Some((it, zc))
            }
        })
        .collect();
    let mut layer = 0usize;
    while (1usize << layer) < n.max(1) {
        let stride = 1usize << layer;
        let mut next: Vec<Option<(MergeItem, usize)>> = vec![None; n];
        for (pos, slot) in slots.iter().enumerate() {
            if let Some((item, zc)) = *slot {
                let target = if zc & stride != 0 { pos - stride } else { pos };
                debug_assert!(
                    next[target].is_none(),
                    "shifter collision at {target}: prefix sums must be monotone"
                );
                next[target] = Some((item, zc));
            }
        }
        slots = next;
        layer += 1;
    }
    // After all layers every survivor sits at (original index - zero_count):
    // a dense prefix.
    let mut out = Vec::with_capacity(n - running);
    for slot in slots.into_iter() {
        match slot {
            Some((item, _)) => out.push(item),
            None => break, // survivors form a contiguous prefix
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(coord: u64, value: f64) -> MergeItem {
        MergeItem { coord, value }
    }

    fn values(items: &[MergeItem]) -> Vec<f64> {
        items.iter().map(|i| i.value).collect()
    }

    #[test]
    fn figure6_example() {
        // Input [1, 0, 0, 2, 3, 0, 4, 0] compacts to [1, 2, 3, 4].
        let input: Vec<MergeItem> = [1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 4.0, 0.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| item(i as u64, v))
            .collect();
        let mut z = ZeroEliminator::new(8);
        let out = z.eliminate(&input);
        assert_eq!(values(&out), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(z.stats().elements_out, 4);
        assert_eq!(z.stats().latency_cycles, 3); // log2(8)
    }

    #[test]
    fn equals_filter_on_many_patterns() {
        let patterns: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.0],
            vec![1.0],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0],
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0],
        ];
        for p in patterns {
            let input: Vec<MergeItem> = p
                .iter()
                .enumerate()
                .map(|(i, &v)| item(i as u64, v))
                .collect();
            let expected: Vec<f64> = p.iter().copied().filter(|&v| v != 0.0).collect();
            let mut z = ZeroEliminator::new(4);
            assert_eq!(values(&z.eliminate(&input)), expected, "pattern {p:?}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let input = vec![item(5, 1.0), item(9, 0.0), item(10, 2.0), item(11, 3.0)];
        let mut z = ZeroEliminator::new(4);
        let out = z.eliminate(&input);
        let coords: Vec<u64> = out.iter().map(|i| i.coord).collect();
        assert_eq!(coords, vec![5, 10, 11]);
    }

    #[test]
    fn latency_is_log2() {
        assert_eq!(ZeroEliminator::new(8).latency(), 3);
        assert_eq!(ZeroEliminator::new(16).latency(), 4);
        assert_eq!(ZeroEliminator::new(17).latency(), 5);
        assert_eq!(ZeroEliminator::new(1).latency(), 0);
    }

    #[test]
    fn wide_input_processed_in_slices() {
        let input: Vec<MergeItem> = (0..20)
            .map(|i| item(i, if i % 3 == 0 { 0.0 } else { 1.0 }))
            .collect();
        let mut z = ZeroEliminator::new(8);
        let out = z.eliminate(&input);
        assert_eq!(out.len(), input.iter().filter(|i| i.value != 0.0).count());
        assert_eq!(z.stats().invocations, 3); // 8 + 8 + 4
    }
}
