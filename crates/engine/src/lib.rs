//! Merge-hardware models for the SpArch reproduction.
//!
//! SpArch's core computational structure is a streaming merger built from
//! comparator arrays (paper §II-A). This crate models that hardware at
//! cycle granularity:
//!
//! * [`item`] — the 64-bit-coordinate + 64-bit-value stream element,
//! * [`comparator`] — the flat N×N comparator-array merge unit with the
//!   boundary-detection rules of Figure 3,
//! * [`hierarchical`] — the two-level merger of Figure 4 with its
//!   O(n^{4/3}) comparator count,
//! * [`zero_elim`] — the prefix-sum + log-shifter zero eliminator of
//!   Figure 6,
//! * [`adder`] — the adder slice that folds duplicate coordinates,
//! * [`merge_tree`] — the K-layer merge tree of Figure 5 (one shared
//!   merger per layer, FIFO nodes), simulated cycle by cycle,
//! * [`multiplier`] — the outer-product multiplier array.
//!
//! Every model is *functionally exact* (bit-identical merge results,
//! validated against software oracles) and *cycle-instrumented* (cycles,
//! comparator operations, FIFO movements), so the system simulator in
//! `sparch-core` can charge time and energy to each component.

pub mod adder;
pub mod clocked;
pub mod comparator;
pub mod hierarchical;
pub mod item;
pub mod merge_tree;
pub mod multiplier;
pub mod zero_elim;

pub use adder::fold_duplicates;
pub use clocked::{Clock, Clocked, PipelineReg};
pub use comparator::{merge_step, ComparatorMerger, MergeStats};
pub use hierarchical::HierarchicalMerger;
pub use item::{is_sorted, is_sorted_unique, stream_of, MergeItem};
pub use merge_tree::{MergeTree, MergeTreeConfig, MergeTreeSim, TreeStats};
pub use multiplier::{MultiplierArray, MultiplierStats};
pub use zero_elim::ZeroEliminator;
