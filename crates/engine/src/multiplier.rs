//! The outer-product multiplier array (paper §II-E, Table I: "2 groups,
//! each consists of 8 double precision floating point multipliers").
//!
//! Each cycle, up to 16 multipliers each take one element of the left
//! matrix's condensed column and one element of the corresponding row of
//! the right matrix, emitting partial products in COO order for the merge
//! tree's leaf ports.

use crate::item::MergeItem;
use serde::{Deserialize, Serialize};
use sparch_sparse::{Index, Value};

/// Counters of multiplier activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplierStats {
    /// Double-precision multiplications performed.
    pub multiplies: u64,
    /// Cycles the array was busy (at its configured throughput).
    pub cycles: u64,
}

/// A fixed-throughput multiplier array.
#[derive(Debug, Clone)]
pub struct MultiplierArray {
    multipliers: usize,
    stats: MultiplierStats,
}

impl MultiplierArray {
    /// Creates an array with `multipliers` parallel units.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers == 0`.
    pub fn new(multipliers: usize) -> Self {
        assert!(multipliers > 0, "need at least one multiplier");
        MultiplierArray {
            multipliers,
            stats: MultiplierStats::default(),
        }
    }

    /// The paper's configuration: 2 groups × 8 units.
    pub fn paper_default() -> Self {
        MultiplierArray::new(16)
    }

    /// Number of parallel multiplier units.
    pub fn width(&self) -> usize {
        self.multipliers
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> MultiplierStats {
        self.stats
    }

    /// Multiplies one element `a_val` at row `a_row` of the left matrix's
    /// condensed column by its corresponding right-matrix row
    /// `(cols, vals)`, producing the scaled row as a sorted COO stream
    /// (`(a_row, col) → a_val * b_val`).
    ///
    /// Charges `ceil(len / multipliers)` cycles.
    pub fn scale_row(
        &mut self,
        a_row: Index,
        a_val: Value,
        cols: &[Index],
        vals: &[Value],
    ) -> Vec<MergeItem> {
        debug_assert_eq!(cols.len(), vals.len());
        let n = cols.len();
        self.stats.multiplies += n as u64;
        self.stats.cycles += (n as u64).div_ceil(self.multipliers as u64);
        cols.iter()
            .zip(vals)
            .map(|(&c, &v)| MergeItem::new(a_row, c, a_val * v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::is_sorted_unique;

    #[test]
    fn scale_row_products() {
        let mut m = MultiplierArray::paper_default();
        let out = m.scale_row(3, 2.0, &[1, 5, 9], &[10.0, 20.0, 30.0]);
        assert_eq!(out.len(), 3);
        assert!(is_sorted_unique(&out));
        assert_eq!(out[0].to_triple(), (3, 1, 20.0));
        assert_eq!(out[2].to_triple(), (3, 9, 60.0));
        assert_eq!(m.stats().multiplies, 3);
        assert_eq!(m.stats().cycles, 1);
    }

    #[test]
    fn cycles_respect_throughput() {
        let mut m = MultiplierArray::new(4);
        let cols: Vec<Index> = (0..10).collect();
        let vals = vec![1.0; 10];
        m.scale_row(0, 1.0, &cols, &vals);
        assert_eq!(m.stats().cycles, 3); // ceil(10/4)
    }

    #[test]
    fn empty_row_is_free_of_multiplies() {
        let mut m = MultiplierArray::new(8);
        let out = m.scale_row(0, 1.0, &[], &[]);
        assert!(out.is_empty());
        assert_eq!(m.stats().multiplies, 0);
        assert_eq!(m.stats().cycles, 0);
    }
}
