//! The adder slice (paper §II-A4).
//!
//! "The merger stated above only merges the elements and leaves alone
//! same-location elements ... we connect a slice of adders right after
//! the merger, and it will add adjacent same-location elements and set one
//! of the elements to zero." The zero eliminator then compacts the holes.
//!
//! Because each merge level combines two streams that are each internally
//! duplicate-free, at most two adjacent elements share a coordinate, so a
//! single slice of pairwise adders suffices at every level.

use crate::item::MergeItem;

/// Result of one adder pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdderStats {
    /// Floating-point additions performed.
    pub adds: u64,
    /// Elements zeroed (to be removed by the zero eliminator).
    pub holes: u64,
}

/// Adds adjacent same-coordinate elements in a sorted stream, leaving a
/// zero-valued hole in place of the first of each pair — exactly what the
/// hardware's adder slice emits before the zero eliminator.
///
/// # Example
///
/// ```
/// use sparch_engine::adder::{add_adjacent, AdderStats};
/// use sparch_engine::MergeItem;
///
/// let merged = vec![
///     MergeItem::new(0, 3, 0.5),
///     MergeItem::new(0, 3, 0.6), // same coordinate: gets the sum
///     MergeItem::new(0, 5, 1.3),
/// ];
/// let (out, stats) = add_adjacent(&merged);
/// assert_eq!(out[0].value, 0.0);             // hole
/// assert!((out[1].value - 1.1).abs() < 1e-12); // folded sum
/// assert_eq!(stats, AdderStats { adds: 1, holes: 1 });
/// ```
pub fn add_adjacent(stream: &[MergeItem]) -> (Vec<MergeItem>, AdderStats) {
    let mut out = stream.to_vec();
    let mut stats = AdderStats::default();
    let mut i = 0;
    while i + 1 < out.len() {
        if out[i].coord == out[i + 1].coord && out[i].value != 0.0 {
            out[i + 1].value += out[i].value;
            out[i].value = 0.0;
            stats.adds += 1;
            stats.holes += 1;
        }
        i += 1;
    }
    (out, stats)
}

/// Convenience composition of the adder slice and a zero filter: folds all
/// runs of equal coordinates in a sorted stream and drops the holes. This
/// is the functional behaviour of adder + zero eliminator at one merge
/// level; it handles arbitrary run lengths (the cascaded hardware achieves
/// the same by repeated pairwise folding across levels).
///
/// Returns the compacted stream and the number of additions performed.
pub fn fold_duplicates(stream: &[MergeItem]) -> (Vec<MergeItem>, u64) {
    let mut out: Vec<MergeItem> = Vec::with_capacity(stream.len());
    let mut adds = 0u64;
    for &item in stream {
        match out.last_mut() {
            Some(last) if last.coord == item.coord => {
                last.value += item.value;
                adds += 1;
            }
            _ => out.push(item),
        }
    }
    (out, adds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::stream_of;

    #[test]
    fn no_duplicates_is_identity() {
        let s = stream_of(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        let (out, stats) = add_adjacent(&s);
        assert_eq!(out, s);
        assert_eq!(stats, AdderStats::default());
    }

    #[test]
    fn pairwise_fold_leaves_hole() {
        let s = stream_of(&[(1, 1, 2.0), (1, 1, 3.0)]);
        let (out, stats) = add_adjacent(&s);
        assert_eq!(out[0].value, 0.0);
        assert_eq!(out[1].value, 5.0);
        assert_eq!(stats.adds, 1);
    }

    #[test]
    fn fold_duplicates_handles_long_runs() {
        let s = stream_of(&[(0, 0, 1.0), (0, 0, 2.0), (0, 0, 3.0), (0, 1, 4.0)]);
        let (out, adds) = fold_duplicates(&s);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 6.0);
        assert_eq!(out[1].value, 4.0);
        assert_eq!(adds, 2);
    }

    #[test]
    fn adder_then_filter_equals_fold_for_pairs() {
        let s = stream_of(&[(0, 0, 1.0), (0, 1, 2.0), (0, 1, -2.0), (2, 2, 5.0)]);
        let (with_holes, _) = add_adjacent(&s);
        let filtered: Vec<MergeItem> = with_holes.into_iter().filter(|i| i.value != 0.0).collect();
        let (folded, _) = fold_duplicates(&s);
        // The fold keeps a 0.0-valued folded element (numerical
        // cancellation), the hardware's filter drops it; both are valid
        // sparse results. Compare on non-zero content.
        let folded_nz: Vec<MergeItem> = folded.into_iter().filter(|i| i.value != 0.0).collect();
        assert_eq!(filtered, folded_nz);
    }

    #[test]
    fn empty_stream() {
        let (out, stats) = add_adjacent(&[]);
        assert!(out.is_empty());
        assert_eq!(stats, AdderStats::default());
        let (out, adds) = fold_duplicates(&[]);
        assert!(out.is_empty());
        assert_eq!(adds, 0);
    }
}
