//! The hierarchical (two-level) comparator array (paper §II-A2, Figure 4).
//!
//! A flat N×N array costs O(N²) comparators. The hierarchical merger
//! splits each N-element window into `k` chunks of `m` (N = k·m); a k×k
//! *top-level* array compares only the **last** element of each chunk to
//! select which chunk pairs the merge path crosses, and one m×m
//! *low-level* array per selected pair (at most `2k-1` of them) merges the
//! actual elements. Comparator count drops to `k² + (2k-1)m²`; with
//! `k = n^(2/3)`, `m = n^(1/3)` that is O(n^{4/3}).
//!
//! Table I instantiates N = 16 as a 4×4 top level + 4×4 low level.

use crate::comparator::MergeStats;
use crate::item::MergeItem;

/// A streaming binary merger built from a two-level comparator hierarchy.
///
/// Functionally identical to [`crate::ComparatorMerger`] (same merged
/// output, same N-per-cycle throughput); only the comparator-op accounting
/// differs, reflecting the cheaper hardware.
///
/// # Example
///
/// ```
/// use sparch_engine::{HierarchicalMerger, MergeItem};
///
/// let merger = HierarchicalMerger::new(16, 4);
/// assert_eq!(merger.width(), 16);
/// // 4x4 top level + up to 7 low-level 4x4 arrays:
/// assert_eq!(merger.comparators(), 16 + 7 * 16);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalMerger {
    /// Total merge width N (elements per cycle).
    n: usize,
    /// Chunk length m (low-level array size).
    m: usize,
    stats: MergeStats,
}

impl HierarchicalMerger {
    /// Creates a merger of width `n` with low-level arrays of size `m x m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, or `m` does not divide `n`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m > 0, "chunk size must be positive");
        assert!(n.is_multiple_of(m), "chunk size {m} must divide width {n}");
        HierarchicalMerger {
            n,
            m,
            stats: MergeStats::default(),
        }
    }

    /// The paper's 16-wide configuration: 4×4 top + 4×4 low (Table I).
    pub fn paper_default() -> Self {
        HierarchicalMerger::new(16, 4)
    }

    /// Merge width N.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Chunks per window.
    pub fn chunks(&self) -> usize {
        self.n / self.m
    }

    /// Physical comparator count: `k² + (2k-1)·m²`.
    pub fn comparators(&self) -> u64 {
        let k = self.chunks() as u64;
        let m = self.m as u64;
        k * k + (2 * k - 1) * m * m
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = MergeStats::default();
    }

    /// Selects the chunk pairs the top-level array activates for one pair
    /// of windows, by running the boundary rules over the chunks' last
    /// elements (Figure 4). Returns `(i, j)` chunk-index pairs in diagonal-
    /// group order. Exposed for tests and DSE; [`HierarchicalMerger::merge`]
    /// uses it for op accounting.
    pub fn select_chunk_pairs(&self, wa: &[MergeItem], wb: &[MergeItem]) -> Vec<(usize, usize)> {
        let chunks_a: Vec<&[MergeItem]> = wa.chunks(self.m).collect();
        let chunks_b: Vec<&[MergeItem]> = wb.chunks(self.m).collect();
        let (ka, kb) = (chunks_a.len(), chunks_b.len());
        // Last element of each chunk (chunks are sorted, so last = max).
        // Unlike the element-level array, chunk-pair selection needs no
        // dummy padding: the chunk merge path runs from (0,0) to
        // (ka-1, kb-1), one boundary per anti-diagonal (2k-1 groups for a
        // k×k array, matching Figure 4's five pairs for k = 3).
        let last = |c: &&[MergeItem]| c.last().expect("chunks are non-empty").coord;
        let mut pairs = Vec::new();
        for i in 0..ka {
            for j in 0..kb {
                let here = last(&chunks_a[i]) >= last(&chunks_b[j]);
                let above = i > 0 && last(&chunks_a[i - 1]) >= last(&chunks_b[j]);
                let left = j == 0 || last(&chunks_a[i]) >= last(&chunks_b[j - 1]);
                if (here && !above) || (!here && left) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Merges two sorted streams completely (up to N elements per cycle),
    /// charging top-level + activated low-level comparator operations per
    /// cycle.
    ///
    /// # Panics
    ///
    /// Debug-asserts sorted inputs.
    pub fn merge(&mut self, a: &[MergeItem], b: &[MergeItem]) -> Vec<MergeItem> {
        debug_assert!(crate::item::is_sorted(a), "input a must be sorted");
        debug_assert!(crate::item::is_sorted(b), "input b must be sorted");
        let k = self.chunks() as u64;
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut pa, mut pb) = (0usize, 0usize);
        while pa < a.len() || pb < b.len() {
            self.stats.cycles += 1;
            let wa = &a[pa..(pa + self.n).min(a.len())];
            let wb = &b[pb..(pb + self.n).min(b.len())];
            // Top level always toggles; low level only for selected pairs.
            let active_pairs = if wa.is_empty() || wb.is_empty() {
                // Degenerate: pure pass-through of one stream, one chunk
                // pair streams through a single low-level array.
                1
            } else {
                self.select_chunk_pairs(wa, wb).len() as u64
            };
            self.stats.comparator_ops += k * k + active_pairs * (self.m as u64).pow(2);
            // Commit the N smallest of the window union (ties toward b,
            // matching the flat array).
            let mut budget = self.n;
            let (wa_end, wb_end) = (pa + wa.len(), pb + wb.len());
            while budget > 0 && (pa < wa_end || pb < wb_end) {
                let take_b = match (pa < wa_end, pb < wb_end) {
                    (true, true) => a[pa].coord >= b[pb].coord,
                    (false, true) => true,
                    (true, false) => false,
                    (false, false) => unreachable!(),
                };
                if take_b {
                    out.push(b[pb]);
                    pb += 1;
                } else {
                    out.push(a[pa]);
                    pa += 1;
                }
                budget -= 1;
                self.stats.emitted += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::is_sorted;
    use crate::ComparatorMerger;

    fn items(coords: &[u64]) -> Vec<MergeItem> {
        coords
            .iter()
            .map(|&c| MergeItem {
                coord: c,
                value: c as f64,
            })
            .collect()
    }

    #[test]
    fn paper_default_shape() {
        let m = HierarchicalMerger::paper_default();
        assert_eq!(m.width(), 16);
        assert_eq!(m.chunks(), 4);
        assert_eq!(m.comparators(), 16 + 7 * 16);
        // cheaper than the flat 16x16 = 256 array
        assert!(m.comparators() < 256);
    }

    #[test]
    fn output_matches_flat_merger() {
        let a = items(&[1, 4, 4, 9, 12, 13, 20, 21, 30, 31, 40, 41, 50, 51, 60, 61]);
        let b = items(&[2, 3, 5, 8, 14, 15, 22, 23, 32, 33, 42, 43, 52, 53, 62, 63]);
        let mut h = HierarchicalMerger::new(8, 4);
        let mut f = ComparatorMerger::new(8);
        let ho = h.merge(&a, &b);
        let fo = f.merge(&a, &b);
        assert_eq!(ho, fo);
        assert!(is_sorted(&ho));
        // Same throughput...
        assert_eq!(h.stats().cycles, f.stats().cycles);
        // ...but fewer comparator toggles.
        assert!(h.stats().comparator_ops < f.stats().comparator_ops);
    }

    #[test]
    fn chunk_pairs_cover_merge_path_figure4() {
        // Figure 4's example: chunks of 4, three chunks per side.
        let a = items(&[1, 3, 4, 13, 19, 22, 35, 37, 42, 47, 48, 58]);
        let b = items(&[3, 5, 10, 12, 15, 29, 36, 40, 44, 52, 55, 61]);
        let m = HierarchicalMerger::new(12, 4);
        let pairs = m.select_chunk_pairs(&a, &b);
        // 2k-1 = 5 diagonal groups, exactly one pair each.
        assert_eq!(pairs.len(), 5);
        // The paper's selected pairs: (A0,B0) (A0,B1) (A1,B1) (A2,B1) (A2,B2),
        // which is where the true element merge path crosses chunk borders
        // (A0's last element 13 precedes B1's first element 15).
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]);
    }

    #[test]
    fn chunk_pairs_contain_true_crossings() {
        // Whatever the data, every (chunk_a, chunk_b) pair that the true
        // two-pointer merge path visits must be selected.
        let a = items(&[0, 1, 2, 3, 100, 101, 102, 103]);
        let b = items(&[50, 51, 52, 53, 54, 55, 56, 57]);
        let m = HierarchicalMerger::new(8, 4);
        let pairs = m.select_chunk_pairs(&a, &b);
        // True path: consume A0 fully (vs B0), then B0, B1, then A1.
        for needed in [(0usize, 0usize), (1, 1)] {
            assert!(
                pairs.contains(&needed),
                "missing pair {needed:?} in {pairs:?}"
            );
        }
    }

    #[test]
    fn merges_with_ragged_tails() {
        let a = items(&[1, 5, 9, 10, 11]);
        let b = items(&[2, 3]);
        let mut h = HierarchicalMerger::new(4, 2);
        let out = h.merge(&a, &b);
        let coords: Vec<u64> = out.iter().map(|i| i.coord).collect();
        assert_eq!(coords, vec![1, 2, 3, 5, 9, 10, 11]);
    }

    #[test]
    fn empty_inputs() {
        let mut h = HierarchicalMerger::new(4, 2);
        assert!(h.merge(&[], &[]).is_empty());
        let a = items(&[1, 2, 3]);
        assert_eq!(h.merge(&a, &[]).len(), 3);
        assert_eq!(h.merge(&[], &a).len(), 3);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn chunk_must_divide_width() {
        let _ = HierarchicalMerger::new(16, 5);
    }
}
