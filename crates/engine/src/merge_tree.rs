//! The merge tree (paper §II-A3, Figure 5).
//!
//! To merge up to 64 sorted arrays into one, SpArch stacks binary mergers
//! into a full binary tree: "each node represents a FIFO on the hardware.
//! Input arrays are fed to the leaf nodes, and the output array is
//! collected from the root node." The throughput of the whole tree is
//! bounded by the root, so **each layer shares one merger**.
//!
//! Two entry points model that hardware:
//!
//! * [`MergeTree::merge`] — the batch interface: preloaded leaf FIFOs,
//!   simulated to completion, returning the folded stream and counters.
//! * [`MergeTreeSim`] — the stateful cycle stepper behind it, driven
//!   through the [`Clocked`] two-phase discipline. Leaves can be fed
//!   *while* the tree merges (with FIFO backpressure), which is how
//!   `sparch-core`'s round co-simulation pipelines the multiplier array
//!   into the tree (Figure 10) without duplicating the service logic.
//!
//! Every cycle, each layer's merger serves one node (round-robin among
//! nodes with work), moving up to `merger_width` elements from its two
//! child FIFOs into the parent FIFO, folding duplicate coordinates through
//! the adder slice on the way (the zero eliminator is implicit in
//! fold-on-push: holes never enter the FIFO). The root FIFO drains into
//! the output at merger width per cycle, modelling the partial-matrix
//! writer; the drained batch is staged in `clock_update` and committed in
//! `clock_apply`, so the writer's output is flip-flopped like every other
//! inter-module signal.

use crate::adder;
use crate::clocked::{Clock, Clocked};
use crate::hierarchical::HierarchicalMerger;
use crate::item::MergeItem;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Merge-tree geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeTreeConfig {
    /// Number of merger layers; the tree accepts `2^layers` input arrays.
    /// Table I: 6 layers → 64-way merge.
    pub layers: usize,
    /// Elements each layer's merger moves per cycle (Table I: 16).
    pub merger_width: usize,
    /// Low-level chunk size of the hierarchical merger (Table I: 4).
    pub merger_chunk: usize,
    /// Capacity of each node FIFO, in elements.
    pub fifo_capacity: usize,
}

impl Default for MergeTreeConfig {
    fn default() -> Self {
        MergeTreeConfig {
            layers: 6,
            merger_width: 16,
            merger_chunk: 4,
            fifo_capacity: 64,
        }
    }
}

impl MergeTreeConfig {
    /// Number of leaf ports (`2^layers`).
    pub fn leaf_count(&self) -> usize {
        1 << self.layers
    }
}

/// Counters from one tree merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total clock cycles until the last output element left the root.
    pub cycles: u64,
    /// Comparator evaluations across all layer mergers.
    pub comparator_ops: u64,
    /// Floating-point additions (duplicate folding).
    pub adds: u64,
    /// Elements moved through node FIFOs (each push + pop counts once).
    pub fifo_movements: u64,
    /// Cycles in which a layer's merger had no serviceable node.
    pub stalls: u64,
    /// Elements emitted at the root.
    pub output_elements: u64,
    /// Highest observed FIFO occupancy.
    pub fifo_high_water: usize,
}

/// One internal node's state during simulation.
#[derive(Debug, Clone)]
struct Node {
    fifo: VecDeque<MergeItem>,
    finished: bool,
}

/// The stateful, cycle-steppable merge tree.
///
/// Leaves are fed with [`MergeTreeSim::load_leaf`] (preloaded batch) or
/// [`MergeTreeSim::push_leaf`] (streaming, with backpressure), and sealed
/// with [`MergeTreeSim::finish_leaf`]. The tree advances one cycle per
/// [`Clocked`] update/apply pair — typically driven by a
/// [`Clock`](crate::clocked::Clock).
///
/// # Example
///
/// ```
/// use sparch_engine::clocked::Clock;
/// use sparch_engine::{MergeItem, MergeTreeConfig, MergeTreeSim};
///
/// let mut sim = MergeTreeSim::new(MergeTreeConfig { layers: 1, ..Default::default() });
/// sim.load_leaf(0, (0..10).map(|i| MergeItem { coord: 2 * i, value: 1.0 }).collect());
/// sim.load_leaf(1, (0..10).map(|i| MergeItem { coord: 2 * i + 1, value: 1.0 }).collect());
/// let mut clock = Clock::new();
/// while !sim.is_done() {
///     clock.tick(&mut [&mut sim]);
/// }
/// assert_eq!(sim.output().len(), 20);
/// assert_eq!(sim.stats().cycles, clock.cycles());
/// ```
#[derive(Debug, Clone)]
pub struct MergeTreeSim {
    config: MergeTreeConfig,
    /// `levels[l]` = nodes at depth `l`; level 0 is the root, level
    /// `layers` holds the leaf FIFOs.
    levels: Vec<Vec<Node>>,
    /// Round-robin service pointer per layer.
    rr: Vec<usize>,
    /// Root-drain batch staged by `clock_update`, committed by
    /// `clock_apply` (the partial-matrix writer's flip-flop).
    staged_out: Vec<MergeItem>,
    output: Vec<MergeItem>,
    stats: TreeStats,
    /// Comparator evaluations one layer merger performs per served cycle.
    ops_per_service: u64,
}

impl MergeTreeSim {
    /// Creates an empty tree with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `merger_width == 0`, the chunk does not
    /// divide the width, or the FIFO capacity is below the merger width
    /// (the merger must be able to land a full emission).
    pub fn new(config: MergeTreeConfig) -> Self {
        assert!(config.layers > 0, "need at least one layer");
        assert!(config.merger_width > 0, "merger width must be positive");
        assert!(
            config.merger_width.is_multiple_of(config.merger_chunk),
            "chunk must divide merger width"
        );
        assert!(
            config.fifo_capacity >= config.merger_width,
            "FIFO capacity must hold one full merger emission"
        );
        let levels = (0..=config.layers)
            .map(|l| {
                vec![
                    Node {
                        fifo: VecDeque::new(),
                        finished: false
                    };
                    1usize << l
                ]
            })
            .collect();
        MergeTreeSim {
            rr: vec![0; config.layers],
            levels,
            staged_out: Vec::new(),
            output: Vec::new(),
            stats: TreeStats::default(),
            ops_per_service: HierarchicalMerger::new(config.merger_width, config.merger_chunk)
                .comparators(),
            config,
        }
    }

    /// The tree's geometry.
    pub fn config(&self) -> MergeTreeConfig {
        self.config
    }

    /// Preloads leaf `leaf` with a complete sorted input and seals it, as
    /// if the data loader had already streamed it in.
    ///
    /// # Panics
    ///
    /// Panics if the leaf index is out of range or `items` is not sorted
    /// by coordinate.
    pub fn load_leaf(&mut self, leaf: usize, items: Vec<MergeItem>) {
        assert!(
            crate::item::is_sorted(&items),
            "input {leaf} is not sorted by coordinate"
        );
        let node = &mut self.levels[self.config.layers][leaf];
        node.fifo = items.into();
        node.finished = true;
    }

    /// Offers one element to leaf `leaf`'s FIFO. Returns the element back
    /// when the FIFO is full (backpressure: the producer must retry next
    /// cycle).
    ///
    /// # Panics
    ///
    /// Panics if the leaf is out of range, already sealed, or `item` would
    /// break the leaf stream's coordinate order.
    pub fn push_leaf(&mut self, leaf: usize, item: MergeItem) -> Result<(), MergeItem> {
        let node = &mut self.levels[self.config.layers][leaf];
        assert!(!node.finished, "leaf {leaf} is sealed");
        assert!(
            node.fifo.back().is_none_or(|b| b.coord <= item.coord),
            "push to leaf {leaf} breaks the sorted-stream contract"
        );
        if node.fifo.len() >= self.config.fifo_capacity {
            return Err(item);
        }
        node.fifo.push_back(item);
        self.stats.fifo_movements += 1;
        self.stats.fifo_high_water = self.stats.fifo_high_water.max(node.fifo.len());
        Ok(())
    }

    /// Current occupancy of leaf `leaf`'s FIFO.
    pub fn leaf_len(&self, leaf: usize) -> usize {
        self.levels[self.config.layers][leaf].fifo.len()
    }

    /// Whether leaf `leaf` can accept a push this cycle.
    pub fn leaf_has_room(&self, leaf: usize) -> bool {
        self.leaf_len(leaf) < self.config.fifo_capacity
    }

    /// Pre-allocates the output vector for an expected element count.
    pub fn reserve_output(&mut self, elements: usize) {
        self.output.reserve(elements);
    }

    /// Seals leaf `leaf`: no more input will arrive (idempotent).
    pub fn finish_leaf(&mut self, leaf: usize) {
        self.levels[self.config.layers][leaf].finished = true;
    }

    /// Seals every leaf (the batch-mode entry state).
    pub fn finish_all_leaves(&mut self) {
        for node in self.levels[self.config.layers].iter_mut() {
            node.finished = true;
        }
    }

    /// True when every element has been merged, drained and committed.
    pub fn is_done(&self) -> bool {
        let root = &self.levels[0][0];
        root.finished && root.fifo.is_empty() && self.staged_out.is_empty()
    }

    /// The committed output stream (sorted, duplicates folded).
    pub fn output(&self) -> &[MergeItem] {
        &self.output
    }

    /// Consumes the simulator, yielding the output stream and counters.
    pub fn into_parts(self) -> (Vec<MergeItem>, TreeStats) {
        (self.output, self.stats)
    }

    /// Counters so far.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Attempts one merger service for parent `(l, p)`. Returns whether
    /// any progress was made (elements moved or completion detected).
    fn service(&mut self, l: usize, p: usize) -> bool {
        let width = self.config.merger_width;
        let (c0, c1) = (2 * p, 2 * p + 1);
        // Split borrows: children live one level below the parent.
        let (upper, lower) = self.levels.split_at_mut(l + 1);
        let parent = &mut upper[l][p];
        if parent.finished {
            return false;
        }
        let (left_nodes, right_nodes) = lower[0].split_at_mut(c1);
        let left = &mut left_nodes[c0];
        let right = &mut right_nodes[0];

        let mut moved = 0usize;
        let mut staging: Vec<MergeItem> = Vec::with_capacity(width);
        while moved < width && parent.fifo.len() + staging.len() < self.config.fifo_capacity {
            let lh = left.fifo.front().map(|i| i.coord);
            let rh = right.fifo.front().map(|i| i.coord);
            let take_right = match (lh, rh) {
                (Some(a), Some(b)) => a >= b,
                // One side empty: safe to pull from the other only if the
                // empty side is finished (no future smaller element).
                (Some(_), None) => {
                    if right.finished {
                        false
                    } else {
                        break;
                    }
                }
                (None, Some(_)) => {
                    if left.finished {
                        true
                    } else {
                        break;
                    }
                }
                (None, None) => break,
            };
            let item = if take_right {
                right.fifo.pop_front().expect("head checked")
            } else {
                left.fifo.pop_front().expect("head checked")
            };
            self.stats.fifo_movements += 1;
            staging.push(item);
            moved += 1;
        }

        // Adder slice + zero eliminator on the emission, then fold against
        // the parent FIFO's tail (duplicates can straddle emissions).
        let (folded, adds) = adder::fold_duplicates(&staging);
        self.stats.adds += adds;
        for item in folded {
            match parent.fifo.back_mut() {
                Some(back) if back.coord == item.coord => {
                    back.value += item.value;
                    self.stats.adds += 1;
                }
                _ => {
                    parent.fifo.push_back(item);
                    self.stats.fifo_movements += 1;
                    self.stats.fifo_high_water = self.stats.fifo_high_water.max(parent.fifo.len());
                }
            }
        }

        if left.finished && right.finished && left.fifo.is_empty() && right.fifo.is_empty() {
            parent.finished = true;
            return true;
        }
        moved > 0
    }
}

impl Clocked for MergeTreeSim {
    /// One cycle's combinational work: stage the root drain (partial-matrix
    /// writer), then run each layer's shared merger top-down — root first,
    /// so a layer consumes the state its children latched last cycle and
    /// pushes from below become visible only next cycle.
    fn clock_update(&mut self) {
        self.stats.cycles += 1;

        let width = self.config.merger_width;
        let root = &mut self.levels[0][0];
        let take = root.fifo.len().min(width);
        for _ in 0..take {
            let item = root.fifo.pop_front().expect("len checked");
            self.stats.fifo_movements += 1;
            self.staged_out.push(item);
        }

        for l in 0..self.config.layers {
            let parents = 1usize << l;
            let mut served = false;
            for probe in 0..parents {
                let p = (self.rr[l] + probe) % parents;
                if self.service(l, p) {
                    self.rr[l] = (p + 1) % parents;
                    served = true;
                    break;
                }
            }
            if served {
                self.stats.comparator_ops += self.ops_per_service;
            } else {
                self.stats.stalls += 1;
            }
        }
    }

    /// Commits the staged writer batch to the output, folding a duplicate
    /// pair that straddled two merger emissions one final time — the
    /// hardware's last adder slice.
    fn clock_apply(&mut self) {
        for item in self.staged_out.drain(..) {
            match self.output.last_mut() {
                Some(last) if last.coord == item.coord => {
                    last.value += item.value;
                    self.stats.adds += 1;
                }
                _ => {
                    self.output.push(item);
                    self.stats.output_elements += 1;
                }
            }
        }
    }
}

/// The batch-mode merge tree: configuration plus [`MergeTree::merge`].
///
/// # Example
///
/// ```
/// use sparch_engine::{MergeItem, MergeTree, MergeTreeConfig};
///
/// let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
/// let inputs: Vec<Vec<MergeItem>> = (0..4)
///     .map(|k| (0..8u32).map(|i| MergeItem::new(0, i * 4 + k, 1.0)).collect())
///     .collect();
/// let (out, stats) = tree.merge(inputs);
/// assert_eq!(out.len(), 32);
/// assert!(out.windows(2).all(|w| w[0].coord < w[1].coord));
/// assert!(stats.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MergeTree {
    config: MergeTreeConfig,
}

impl MergeTree {
    /// Creates a tree with the given geometry.
    ///
    /// # Panics
    ///
    /// Same validity requirements as [`MergeTreeSim::new`].
    pub fn new(config: MergeTreeConfig) -> Self {
        // Validate eagerly so a bad geometry fails at construction.
        let _ = MergeTreeSim::new(config);
        MergeTree { config }
    }

    /// The tree's geometry.
    pub fn config(&self) -> MergeTreeConfig {
        self.config
    }

    /// Merges up to `2^layers` sorted input arrays into one sorted,
    /// duplicate-folded output, simulating the datapath cycle by cycle
    /// through the [`Clocked`] discipline.
    ///
    /// # Panics
    ///
    /// Panics if more inputs than leaf ports are supplied, or if an input
    /// array is not sorted by coordinate.
    pub fn merge(&self, inputs: Vec<Vec<MergeItem>>) -> (Vec<MergeItem>, TreeStats) {
        let leaves = self.config.leaf_count();
        assert!(
            inputs.len() <= leaves,
            "{} inputs exceed the tree's {leaves} leaf ports",
            inputs.len()
        );
        for (i, arr) in inputs.iter().enumerate() {
            assert!(crate::item::is_sorted(arr), "input {i} is not sorted");
        }

        let total_in: usize = inputs.iter().map(Vec::len).sum();
        let layers = self.config.layers;
        let width = self.config.merger_width;

        let mut sim = MergeTreeSim::new(self.config);
        sim.reserve_output(total_in);
        for (i, input) in inputs.into_iter().enumerate() {
            sim.load_leaf(i, input);
        }
        sim.finish_all_leaves(); // unfed leaves are trivially done

        // Generous runaway guard: every element crosses `layers` FIFOs at
        // `width` per layer-cycle, so this bound is far above any legal run.
        let cycle_cap = 1000
            + (total_in as u64 + 1) * (layers as u64 + 2) * 4 / width as u64
            + (total_in as u64 + 1) * 8;

        let mut clock = Clock::new();
        while !sim.is_done() {
            assert!(
                clock.cycles() < cycle_cap.max(10_000),
                "merge tree failed to converge (bug): cycle {} of cap {}",
                clock.cycles(),
                cycle_cap
            );
            clock.tick(&mut [&mut sim]);
        }
        sim.into_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{is_sorted_unique, stream_of};

    fn sorted_run(start: u64, step: u64, len: usize) -> Vec<MergeItem> {
        (0..len as u64)
            .map(|i| MergeItem {
                coord: start + i * step,
                value: 1.0,
            })
            .collect()
    }

    #[test]
    fn figure5_four_way_merge() {
        // Figure 5's four arrays (coordinates only).
        let a = [24u64, 26, 31, 52, 54, 56, 57, 58, 73, 75];
        let b = [22u64, 28, 42, 44, 46, 47, 48];
        let c = [11u64, 13, 15, 21, 23, 25, 41, 43, 45];
        let d = [12u64, 14, 16, 17, 18, 32, 34, 36, 37, 38, 72];
        let inputs: Vec<Vec<MergeItem>> = [&a[..], &b, &c, &d]
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&x| MergeItem {
                        coord: x,
                        value: 1.0,
                    })
                    .collect()
            })
            .collect();
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 2,
            ..Default::default()
        });
        let (out, stats) = tree.merge(inputs);
        let mut expected: Vec<u64> = a.iter().chain(&b).chain(&c).chain(&d).copied().collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.iter().map(|i| i.coord).collect();
        assert_eq!(got, expected);
        assert_eq!(stats.output_elements as usize, expected.len());
        assert!(stats.cycles >= 3, "startup latency spans the layers");
    }

    #[test]
    fn folds_duplicates_across_arrays() {
        let inputs = vec![
            stream_of(&[(0, 1, 1.0), (0, 3, 2.0)]),
            stream_of(&[(0, 1, 10.0), (0, 2, 5.0)]),
            stream_of(&[(0, 3, 100.0)]),
            stream_of(&[(0, 1, 0.5)]),
        ];
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 2,
            ..Default::default()
        });
        let (out, stats) = tree.merge(inputs);
        assert!(is_sorted_unique(&out), "duplicates must fold: {out:?}");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 11.5); // 1 + 10 + 0.5
        assert_eq!(out[1].value, 5.0);
        assert_eq!(out[2].value, 102.0);
        assert!(stats.adds >= 3);
    }

    #[test]
    fn full_64_way_merge() {
        let tree = MergeTree::new(MergeTreeConfig::default());
        let inputs: Vec<Vec<MergeItem>> = (0..64).map(|k| sorted_run(k as u64, 64, 100)).collect();
        let (out, stats) = tree.merge(inputs);
        assert_eq!(out.len(), 6400);
        assert!(is_sorted_unique(&out));
        // Steady state: ~16 elements/cycle at the root, plus pipeline fill.
        assert!(
            stats.cycles >= 6400 / 16,
            "cycles {} below root-bound minimum",
            stats.cycles
        );
        assert!(
            stats.cycles < 3 * 6400 / 16 + 200,
            "cycles {} far above root-bound minimum: throughput bug",
            stats.cycles
        );
    }

    #[test]
    fn partial_leaf_population() {
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 3,
            ..Default::default()
        });
        // Only 3 of 8 leaves are fed.
        let inputs = vec![
            sorted_run(0, 3, 10),
            sorted_run(1, 3, 10),
            sorted_run(2, 3, 10),
        ];
        let (out, _) = tree.merge(inputs);
        assert_eq!(out.len(), 30);
        assert!(is_sorted_unique(&out));
    }

    #[test]
    fn empty_and_single_inputs() {
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 2,
            ..Default::default()
        });
        let (out, _) = tree.merge(vec![]);
        assert!(out.is_empty());
        let (out, _) = tree.merge(vec![sorted_run(5, 1, 7)]);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn skewed_input_lengths() {
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 2,
            ..Default::default()
        });
        let inputs = vec![
            sorted_run(0, 1, 1000),
            sorted_run(5000, 1, 3),
            sorted_run(6000, 1, 1),
            sorted_run(7000, 1, 50),
        ];
        let (out, _) = tree.merge(inputs);
        assert_eq!(out.len(), 1054);
        assert!(is_sorted_unique(&out));
    }

    #[test]
    fn comparator_ops_scale_with_cycles() {
        let tree = MergeTree::new(MergeTreeConfig::default());
        let small = tree.merge((0..8).map(|k| sorted_run(k, 8, 10)).collect()).1;
        let large = tree
            .merge((0..8).map(|k| sorted_run(k, 8, 1000)).collect())
            .1;
        assert!(large.comparator_ops > small.comparator_ops);
        assert!(large.cycles > small.cycles);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_inputs_rejected() {
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 1,
            ..Default::default()
        });
        let _ = tree.merge(vec![vec![], vec![], vec![]]);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn unsorted_input_rejected() {
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 1,
            ..Default::default()
        });
        let bad = vec![
            MergeItem {
                coord: 5,
                value: 1.0,
            },
            MergeItem {
                coord: 1,
                value: 1.0,
            },
        ];
        let _ = tree.merge(vec![bad]);
    }

    #[test]
    fn streaming_feed_matches_batch_merge() {
        // Feed the same streams element by element through push_leaf while
        // the tree runs; output and element counts must match batch mode.
        let config = MergeTreeConfig {
            layers: 2,
            ..Default::default()
        };
        let inputs: Vec<Vec<MergeItem>> = (0..4).map(|k| sorted_run(k, 4, 200)).collect();
        let (batch_out, _) = MergeTree::new(config).merge(inputs.clone());

        let mut sim = MergeTreeSim::new(config);
        let mut cursors = vec![0usize; inputs.len()];
        let mut clock = Clock::new();
        loop {
            sim.clock_update();
            for (k, input) in inputs.iter().enumerate() {
                // A few pushes per cycle, respecting backpressure.
                for _ in 0..4 {
                    if cursors[k] >= input.len() {
                        sim.finish_leaf(k);
                        break;
                    }
                    match sim.push_leaf(k, input[cursors[k]]) {
                        Ok(()) => cursors[k] += 1,
                        Err(_) => break,
                    }
                }
            }
            sim.clock_apply();
            clock.tick(&mut []); // external cycle counter only
            if sim.is_done() {
                break;
            }
            assert!(
                clock.cycles() < 100_000,
                "streaming feed failed to converge"
            );
        }
        assert_eq!(sim.output(), &batch_out[..]);
    }

    #[test]
    fn high_water_mark_is_recorded() {
        let tree = MergeTree::new(MergeTreeConfig::default());
        let inputs: Vec<Vec<MergeItem>> = (0..64).map(|k| sorted_run(k as u64, 64, 50)).collect();
        let (_, stats) = tree.merge(inputs);
        assert!(
            stats.fifo_high_water > 0,
            "preloaded leaves must register FIFO pressure"
        );
    }
}
