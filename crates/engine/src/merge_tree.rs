//! The merge tree (paper §II-A3, Figure 5).
//!
//! To merge up to 64 sorted arrays into one, SpArch stacks binary mergers
//! into a full binary tree: "each node represents a FIFO on the hardware.
//! Input arrays are fed to the leaf nodes, and the output array is
//! collected from the root node." The throughput of the whole tree is
//! bounded by the root, so **each layer shares one merger**.
//!
//! This module simulates the tree cycle by cycle: every cycle, each
//! layer's merger serves one node (round-robin among nodes with work),
//! moving up to `merger_width` elements from its two child FIFOs into the
//! parent FIFO, folding duplicate coordinates through the adder slice on
//! the way (the zero eliminator is implicit in fold-on-push: holes never
//! enter the FIFO). The root FIFO drains into the output at merger width
//! per cycle, modelling the partial-matrix writer.

use crate::adder;
use crate::hierarchical::HierarchicalMerger;
use crate::item::MergeItem;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Merge-tree geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeTreeConfig {
    /// Number of merger layers; the tree accepts `2^layers` input arrays.
    /// Table I: 6 layers → 64-way merge.
    pub layers: usize,
    /// Elements each layer's merger moves per cycle (Table I: 16).
    pub merger_width: usize,
    /// Low-level chunk size of the hierarchical merger (Table I: 4).
    pub merger_chunk: usize,
    /// Capacity of each node FIFO, in elements.
    pub fifo_capacity: usize,
}

impl Default for MergeTreeConfig {
    fn default() -> Self {
        MergeTreeConfig { layers: 6, merger_width: 16, merger_chunk: 4, fifo_capacity: 64 }
    }
}

impl MergeTreeConfig {
    /// Number of leaf ports (`2^layers`).
    pub fn leaf_count(&self) -> usize {
        1 << self.layers
    }
}

/// Counters from one tree merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total clock cycles until the last output element left the root.
    pub cycles: u64,
    /// Comparator evaluations across all layer mergers.
    pub comparator_ops: u64,
    /// Floating-point additions (duplicate folding).
    pub adds: u64,
    /// Elements moved through node FIFOs (each push + pop counts once).
    pub fifo_movements: u64,
    /// Cycles in which a layer's merger had no serviceable node.
    pub stalls: u64,
    /// Elements emitted at the root.
    pub output_elements: u64,
    /// Highest observed FIFO occupancy.
    pub fifo_high_water: usize,
}

/// A cycle-level model of the K-layer streaming merge tree.
///
/// # Example
///
/// ```
/// use sparch_engine::{MergeItem, MergeTree, MergeTreeConfig};
///
/// let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
/// let inputs: Vec<Vec<MergeItem>> = (0..4)
///     .map(|k| (0..8u32).map(|i| MergeItem::new(0, i * 4 + k, 1.0)).collect())
///     .collect();
/// let (out, stats) = tree.merge(inputs);
/// assert_eq!(out.len(), 32);
/// assert!(out.windows(2).all(|w| w[0].coord < w[1].coord));
/// assert!(stats.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MergeTree {
    config: MergeTreeConfig,
}

/// One internal node's state during simulation.
#[derive(Debug)]
struct Node {
    fifo: VecDeque<MergeItem>,
    finished: bool,
}

impl MergeTree {
    /// Creates a tree with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `merger_width == 0`, the chunk does not
    /// divide the width, or the FIFO capacity is below the merger width
    /// (the merger must be able to land a full emission).
    pub fn new(config: MergeTreeConfig) -> Self {
        assert!(config.layers > 0, "need at least one layer");
        assert!(config.merger_width > 0, "merger width must be positive");
        assert!(
            config.merger_width % config.merger_chunk == 0,
            "chunk must divide merger width"
        );
        assert!(
            config.fifo_capacity >= config.merger_width,
            "FIFO capacity must hold one full merger emission"
        );
        MergeTree { config }
    }

    /// The tree's geometry.
    pub fn config(&self) -> MergeTreeConfig {
        self.config
    }

    /// Comparator evaluations one layer's (hierarchical) merger performs
    /// per active cycle.
    fn ops_per_active_cycle(&self) -> u64 {
        HierarchicalMerger::new(self.config.merger_width, self.config.merger_chunk).comparators()
    }

    /// Merges up to `2^layers` sorted input arrays into one sorted,
    /// duplicate-folded output, simulating the datapath cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if more inputs than leaf ports are supplied, or if an input
    /// array is not sorted by coordinate.
    pub fn merge(&self, inputs: Vec<Vec<MergeItem>>) -> (Vec<MergeItem>, TreeStats) {
        let leaves = self.config.leaf_count();
        assert!(
            inputs.len() <= leaves,
            "{} inputs exceed the tree's {leaves} leaf ports",
            inputs.len()
        );
        for (i, arr) in inputs.iter().enumerate() {
            assert!(crate::item::is_sorted(arr), "input {i} is not sorted");
        }

        let total_in: usize = inputs.iter().map(Vec::len).sum();
        let mut stats = TreeStats::default();
        let layers = self.config.layers;

        // levels[l] = nodes at depth l; level 0 is the root, level
        // `layers` holds the leaf FIFOs (pre-loaded with the inputs, as if
        // the data loader had streamed them in).
        let mut levels: Vec<Vec<Node>> = (0..=layers)
            .map(|l| {
                (0..(1usize << l))
                    .map(|_| Node { fifo: VecDeque::new(), finished: false })
                    .collect()
            })
            .collect();
        for (i, input) in inputs.into_iter().enumerate() {
            levels[layers][i].fifo = input.into();
            levels[layers][i].finished = true;
        }
        for node in levels[layers].iter_mut() {
            node.finished = true; // unfed leaves are trivially done
        }

        let mut rr: Vec<usize> = vec![0; layers]; // round-robin per layer
        let mut output: Vec<MergeItem> = Vec::with_capacity(total_in);
        let width = self.config.merger_width;
        let ops_per_cycle = self.ops_per_active_cycle();
        // Generous runaway guard: every element crosses `layers` FIFOs at
        // `width` per layer-cycle, so this bound is far above any legal run.
        let cycle_cap = 1000 + (total_in as u64 + 1) * (layers as u64 + 2) * 4 / width as u64
            + (total_in as u64 + 1) * 8;

        loop {
            stats.cycles += 1;
            assert!(
                stats.cycles < cycle_cap.max(10_000),
                "merge tree failed to converge (bug): cycle {} of cap {}",
                stats.cycles,
                cycle_cap
            );

            // Drain the root FIFO into the output (partial-matrix writer).
            // A duplicate pair can straddle two merger emissions when the
            // parent FIFO drains between them, so the writer folds one
            // final time — the hardware's last adder slice.
            {
                let root = &mut levels[0][0];
                let take = root.fifo.len().min(width);
                for _ in 0..take {
                    let item = root.fifo.pop_front().expect("len checked");
                    stats.fifo_movements += 1;
                    match output.last_mut() {
                        Some(last) if last.coord == item.coord => {
                            last.value += item.value;
                            stats.adds += 1;
                        }
                        _ => {
                            output.push(item);
                            stats.output_elements += 1;
                        }
                    }
                }
            }

            // Top-down: each layer's merger serves one node using the
            // state its children had at the start of the cycle (one-cycle
            // FIFO latency per level).
            for l in 0..layers {
                let parents = 1usize << l;
                let mut served = false;
                for probe in 0..parents {
                    let p = (rr[l] + probe) % parents;
                    if self.service(&mut levels, l, p, &mut stats) {
                        rr[l] = (p + 1) % parents;
                        served = true;
                        break;
                    }
                }
                if !served {
                    stats.stalls += 1;
                }
            }

            let root = &levels[0][0];
            if root.finished && root.fifo.is_empty() {
                break;
            }
        }

        // Account comparator toggles: every non-stalled layer-cycle runs
        // one hierarchical merger evaluation.
        let active_layer_cycles = stats.cycles * layers as u64 - stats.stalls;
        stats.comparator_ops = active_layer_cycles * ops_per_cycle;

        let mut high = 0usize;
        for level in &levels {
            for node in level {
                high = high.max(node.fifo.len());
            }
        }
        stats.fifo_high_water = high; // all drained: report capacity pressure instead
        (output, stats)
    }

    /// Attempts one merger service for parent `(l, p)`. Returns whether
    /// any progress was made (elements moved or completion detected).
    fn service(&self, levels: &mut [Vec<Node>], l: usize, p: usize, stats: &mut TreeStats) -> bool {
        let width = self.config.merger_width;
        let (c0, c1) = (2 * p, 2 * p + 1);
        // Split borrows: children live one level below the parent.
        let (upper, lower) = levels.split_at_mut(l + 1);
        let parent = &mut upper[l][p];
        if parent.finished {
            return false;
        }
        let (left_nodes, right_nodes) = lower[0].split_at_mut(c1);
        let left = &mut left_nodes[c0];
        let right = &mut right_nodes[0];

        let mut moved = 0usize;
        let mut staging: Vec<MergeItem> = Vec::with_capacity(width);
        while moved < width && parent.fifo.len() + staging.len() < self.config.fifo_capacity {
            let lh = left.fifo.front().map(|i| i.coord);
            let rh = right.fifo.front().map(|i| i.coord);
            let take_right = match (lh, rh) {
                (Some(a), Some(b)) => a >= b,
                // One side empty: safe to pull from the other only if the
                // empty side is finished (no future smaller element).
                (Some(_), None) => {
                    if right.finished {
                        false
                    } else {
                        break;
                    }
                }
                (None, Some(_)) => {
                    if left.finished {
                        true
                    } else {
                        break;
                    }
                }
                (None, None) => break,
            };
            let item = if take_right {
                right.fifo.pop_front().expect("head checked")
            } else {
                left.fifo.pop_front().expect("head checked")
            };
            stats.fifo_movements += 1;
            staging.push(item);
            moved += 1;
        }

        // Adder slice + zero eliminator on the emission, then fold against
        // the parent FIFO's tail (duplicates can straddle emissions).
        let (folded, adds) = adder::fold_duplicates(&staging);
        stats.adds += adds;
        for item in folded {
            match parent.fifo.back_mut() {
                Some(back) if back.coord == item.coord => {
                    back.value += item.value;
                    stats.adds += 1;
                }
                _ => {
                    parent.fifo.push_back(item);
                    stats.fifo_movements += 1;
                    stats.fifo_high_water = stats.fifo_high_water.max(parent.fifo.len());
                }
            }
        }

        if left.finished && right.finished && left.fifo.is_empty() && right.fifo.is_empty() {
            parent.finished = true;
            return true;
        }
        moved > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{is_sorted_unique, stream_of};

    fn sorted_run(start: u64, step: u64, len: usize) -> Vec<MergeItem> {
        (0..len as u64)
            .map(|i| MergeItem { coord: start + i * step, value: 1.0 })
            .collect()
    }

    #[test]
    fn figure5_four_way_merge() {
        // Figure 5's four arrays (coordinates only).
        let a = [24u64, 26, 31, 52, 54, 56, 57, 58, 73, 75];
        let b = [22u64, 28, 42, 44, 46, 47, 48];
        let c = [11u64, 13, 15, 21, 23, 25, 41, 43, 45];
        let d = [12u64, 14, 16, 17, 18, 32, 34, 36, 37, 38, 72];
        let inputs: Vec<Vec<MergeItem>> = [&a[..], &b, &c, &d]
            .iter()
            .map(|s| s.iter().map(|&x| MergeItem { coord: x, value: 1.0 }).collect())
            .collect();
        let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
        let (out, stats) = tree.merge(inputs);
        let mut expected: Vec<u64> =
            a.iter().chain(&b).chain(&c).chain(&d).copied().collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.iter().map(|i| i.coord).collect();
        assert_eq!(got, expected);
        assert_eq!(stats.output_elements as usize, expected.len());
        assert!(stats.cycles >= 3, "startup latency spans the layers");
    }

    #[test]
    fn folds_duplicates_across_arrays() {
        let inputs = vec![
            stream_of(&[(0, 1, 1.0), (0, 3, 2.0)]),
            stream_of(&[(0, 1, 10.0), (0, 2, 5.0)]),
            stream_of(&[(0, 3, 100.0)]),
            stream_of(&[(0, 1, 0.5)]),
        ];
        let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
        let (out, stats) = tree.merge(inputs);
        assert!(is_sorted_unique(&out), "duplicates must fold: {out:?}");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 11.5); // 1 + 10 + 0.5
        assert_eq!(out[1].value, 5.0);
        assert_eq!(out[2].value, 102.0);
        assert!(stats.adds >= 3);
    }

    #[test]
    fn full_64_way_merge() {
        let tree = MergeTree::new(MergeTreeConfig::default());
        let inputs: Vec<Vec<MergeItem>> =
            (0..64).map(|k| sorted_run(k as u64, 64, 100)).collect();
        let (out, stats) = tree.merge(inputs);
        assert_eq!(out.len(), 6400);
        assert!(is_sorted_unique(&out));
        // Steady state: ~16 elements/cycle at the root, plus pipeline fill.
        assert!(
            stats.cycles >= 6400 / 16,
            "cycles {} below root-bound minimum",
            stats.cycles
        );
        assert!(
            stats.cycles < 3 * 6400 / 16 + 200,
            "cycles {} far above root-bound minimum: throughput bug",
            stats.cycles
        );
    }

    #[test]
    fn partial_leaf_population() {
        let tree = MergeTree::new(MergeTreeConfig { layers: 3, ..Default::default() });
        // Only 3 of 8 leaves are fed.
        let inputs = vec![sorted_run(0, 3, 10), sorted_run(1, 3, 10), sorted_run(2, 3, 10)];
        let (out, _) = tree.merge(inputs);
        assert_eq!(out.len(), 30);
        assert!(is_sorted_unique(&out));
    }

    #[test]
    fn empty_and_single_inputs() {
        let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
        let (out, _) = tree.merge(vec![]);
        assert!(out.is_empty());
        let (out, _) = tree.merge(vec![sorted_run(5, 1, 7)]);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn skewed_input_lengths() {
        let tree = MergeTree::new(MergeTreeConfig { layers: 2, ..Default::default() });
        let inputs = vec![
            sorted_run(0, 1, 1000),
            sorted_run(5000, 1, 3),
            sorted_run(6000, 1, 1),
            sorted_run(7000, 1, 50),
        ];
        let (out, _) = tree.merge(inputs);
        assert_eq!(out.len(), 1054);
        assert!(is_sorted_unique(&out));
    }

    #[test]
    fn comparator_ops_scale_with_cycles() {
        let tree = MergeTree::new(MergeTreeConfig::default());
        let small = tree.merge((0..8).map(|k| sorted_run(k, 8, 10)).collect()).1;
        let large = tree.merge((0..8).map(|k| sorted_run(k, 8, 1000)).collect()).1;
        assert!(large.comparator_ops > small.comparator_ops);
        assert!(large.cycles > small.cycles);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_inputs_rejected() {
        let tree = MergeTree::new(MergeTreeConfig { layers: 1, ..Default::default() });
        let _ = tree.merge(vec![vec![], vec![], vec![]]);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn unsorted_input_rejected() {
        let tree = MergeTree::new(MergeTreeConfig { layers: 1, ..Default::default() });
        let bad = vec![MergeItem { coord: 5, value: 1.0 }, MergeItem { coord: 1, value: 1.0 }];
        let _ = tree.merge(vec![bad]);
    }
}
