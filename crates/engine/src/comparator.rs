//! The comparator-array merge unit (paper §II-A1, Figure 3).
//!
//! An N×N array of 64-bit comparators merges two sorted windows in a
//! single cycle. Entry `(i, j)` holds `a_i ≥ b_j`; a *boundary* is drawn
//! between the `≥` and `<` regions, and the tiles are grouped by
//! anti-diagonals so that the boundary tile of group `k` outputs the k-th
//! element of the merged sequence. Because no tile depends on another
//! tile's output, "all the results are generated in one clock cycle".
//!
//! [`merge_step`] is the combinational circuit: one evaluation of the
//! array over two windows, implementing the paper's four boundary rules
//! literally. [`ComparatorMerger`] wraps it into a streaming unit that
//! sustains N merged elements per cycle over arbitrarily long inputs,
//! counting cycles and comparator operations for the timing/energy models.

use crate::item::MergeItem;
use serde::{Deserialize, Serialize};

/// Evaluates the comparison matrix entry for windows `a`, `b` with the
/// paper's padding: a dummy `<` column on the right (`j == b.len()`) and a
/// dummy `≥` row at the bottom (`i == a.len()`). Returns `true` for `≥`.
fn tile(a: &[MergeItem], b: &[MergeItem], i: usize, j: usize) -> bool {
    if i == a.len() {
        true // dummy bottom row of '≥'
    } else if j == b.len() {
        false // dummy right column of '<'
    } else {
        a[i].coord >= b[j].coord
    }
}

/// One combinational evaluation of the comparator array: merges two sorted
/// windows completely, returning `a.len() + b.len()` sorted outputs.
///
/// Boundary rules (§II-A1): a tile is a boundary iff it is `≥` with a `<`
/// above, or `<` with a `≥` to the left; the implicit out-of-array
/// neighbours are `<` above row 0 and `≥` left of column 0, which
/// subsumes the paper's rules 1 and 2 (corner and first row). Each
/// anti-diagonal group has exactly one boundary tile, whose smaller input
/// is the group's output.
///
/// Ties (`a_i == b_j`) resolve as `≥`, i.e. the `b` element is emitted
/// first; the downstream adder folds equal coordinates, so tie order never
/// affects results.
///
/// # Panics
///
/// Panics (debug assertion) if the boundary-rule invariant "one output per
/// diagonal group" is violated — which would indicate unsorted input.
pub fn merge_step(a: &[MergeItem], b: &[MergeItem]) -> Vec<MergeItem> {
    let (la, lb) = (a.len(), b.len());
    let mut out: Vec<Option<MergeItem>> = vec![None; la + lb];
    for i in 0..=la {
        for j in 0..=lb {
            if i == la && j == lb {
                continue; // corner of the two paddings: no group
            }
            let here = tile(a, b, i, j);
            let above = if i == 0 { false } else { tile(a, b, i - 1, j) };
            let left = if j == 0 { true } else { tile(a, b, i, j - 1) };
            let boundary = (here && !above) || (!here && left);
            if boundary {
                let k = i + j;
                let output = if here { b[j] } else { a[i] };
                debug_assert!(
                    out[k].is_none(),
                    "two boundary tiles in diagonal group {k}: inputs must be sorted"
                );
                out[k] = Some(output);
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("every diagonal group must produce exactly one output"))
        .collect()
}

/// Number of real comparator evaluations [`merge_step`] performs for the
/// given window lengths (the dummy row/column are constants, not
/// comparators).
pub fn merge_step_ops(la: usize, lb: usize) -> u64 {
    la as u64 * lb as u64
}

/// Instrumentation counters of a streaming merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeStats {
    /// Clock cycles consumed.
    pub cycles: u64,
    /// Comparator evaluations (hardware toggles the full array each cycle).
    pub comparator_ops: u64,
    /// Elements emitted.
    pub emitted: u64,
}

impl MergeStats {
    /// Accumulates another run's counters.
    pub fn merge(&mut self, other: &MergeStats) {
        self.cycles += other.cycles;
        self.comparator_ops += other.comparator_ops;
        self.emitted += other.emitted;
    }
}

/// A streaming binary merger with a flat N×N comparator array: emits up to
/// N merged elements per cycle.
///
/// # Example
///
/// ```
/// use sparch_engine::{ComparatorMerger, MergeItem};
///
/// let a: Vec<MergeItem> = (0..10).map(|i| MergeItem::new(0, i * 2, 1.0)).collect();
/// let b: Vec<MergeItem> = (0..10).map(|i| MergeItem::new(0, i * 2 + 1, 1.0)).collect();
/// let mut merger = ComparatorMerger::new(4);
/// let out = merger.merge(&a, &b);
/// assert_eq!(out.len(), 20);
/// assert!(out.windows(2).all(|w| w[0].coord < w[1].coord));
/// assert_eq!(merger.stats().cycles, 5); // 20 elements / 4 per cycle
/// ```
#[derive(Debug, Clone)]
pub struct ComparatorMerger {
    n: usize,
    stats: MergeStats,
}

impl ComparatorMerger {
    /// Creates a merger with an `n x n` comparator array (n elements of
    /// throughput per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "array size must be positive");
        ComparatorMerger {
            n,
            stats: MergeStats::default(),
        }
    }

    /// Array side length N.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = MergeStats::default();
    }

    /// Comparator evaluations charged per cycle (the full array toggles).
    fn ops_per_cycle(&self) -> u64 {
        (self.n * self.n) as u64
    }

    /// Merges two sorted streams completely, emitting up to N elements per
    /// cycle. Duplicate coordinates are preserved (folding is the adder
    /// stage's job).
    ///
    /// # Panics
    ///
    /// Debug-asserts that both inputs are sorted.
    pub fn merge(&mut self, a: &[MergeItem], b: &[MergeItem]) -> Vec<MergeItem> {
        debug_assert!(crate::item::is_sorted(a), "input a must be sorted");
        debug_assert!(crate::item::is_sorted(b), "input b must be sorted");
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut pa, mut pb) = (0usize, 0usize);
        while pa < a.len() || pb < b.len() {
            // One cycle: the array sees windows of up to N elements per
            // side and commits the N smallest of their union (they are
            // final: nothing later in either stream can precede them).
            self.stats.cycles += 1;
            self.stats.comparator_ops += self.ops_per_cycle();
            let wa_end = (pa + self.n).min(a.len());
            let wb_end = (pb + self.n).min(b.len());
            let mut budget = self.n;
            while budget > 0 && (pa < wa_end || pb < wb_end) {
                let take_b = match (pa < wa_end, pb < wb_end) {
                    // '≥' resolves ties toward b, matching merge_step.
                    (true, true) => a[pa].coord >= b[pb].coord,
                    (false, true) => true,
                    (true, false) => false,
                    (false, false) => unreachable!(),
                };
                if take_b {
                    out.push(b[pb]);
                    pb += 1;
                } else {
                    out.push(a[pa]);
                    pa += 1;
                }
                budget -= 1;
                self.stats.emitted += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{is_sorted, stream_of};

    fn items(coords: &[u64]) -> Vec<MergeItem> {
        coords
            .iter()
            .map(|&c| MergeItem {
                coord: c,
                value: c as f64,
            })
            .collect()
    }

    fn sorted_oracle(a: &[MergeItem], b: &[MergeItem]) -> Vec<u64> {
        let mut all: Vec<u64> = a.iter().chain(b).map(|i| i.coord).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn merge_step_figure3_example() {
        // Coordinates from Figure 3: A = (1)(3)(4)(13), B = (3)(5)(10)(12).
        let a = items(&[1, 3, 4, 13]);
        let b = items(&[3, 5, 10, 12]);
        let out = merge_step(&a, &b);
        let coords: Vec<u64> = out.iter().map(|i| i.coord).collect();
        assert_eq!(coords, vec![1, 3, 3, 4, 5, 10, 12, 13]);
    }

    #[test]
    fn merge_step_matches_oracle_on_many_shapes() {
        let cases: &[(&[u64], &[u64])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[], &[2]),
            (&[1, 2, 3], &[10, 20]),
            (&[10, 20], &[1, 2, 3]),
            (&[1, 1, 1], &[1, 1]),
            (&[5], &[5]),
            (&[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]),
        ];
        for (ca, cb) in cases {
            let (a, b) = (items(ca), items(cb));
            let merged: Vec<u64> = merge_step(&a, &b).iter().map(|i| i.coord).collect();
            assert_eq!(merged, sorted_oracle(&a, &b), "case {ca:?} {cb:?}");
        }
    }

    #[test]
    fn merge_step_tie_prefers_b() {
        let a = vec![MergeItem {
            coord: 7,
            value: 1.0,
        }];
        let b = vec![MergeItem {
            coord: 7,
            value: 2.0,
        }];
        let out = merge_step(&a, &b);
        assert_eq!(out[0].value, 2.0, "'≥' outputs the b element first");
        assert_eq!(out[1].value, 1.0);
    }

    #[test]
    fn merge_step_op_count() {
        assert_eq!(merge_step_ops(4, 4), 16);
        assert_eq!(merge_step_ops(0, 5), 0);
    }

    #[test]
    fn streaming_merge_matches_oracle() {
        let a = stream_of(&[(0, 1, 1.0), (0, 5, 2.0), (2, 0, 3.0), (7, 7, 4.0)]);
        let b = stream_of(&[(0, 2, 5.0), (1, 0, 6.0), (2, 0, 7.0)]);
        for n in [1usize, 2, 3, 4, 16] {
            let mut m = ComparatorMerger::new(n);
            let out = m.merge(&a, &b);
            assert_eq!(out.len(), 7);
            assert!(is_sorted(&out));
            let coords: Vec<u64> = out.iter().map(|i| i.coord).collect();
            assert_eq!(coords, sorted_oracle(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn throughput_is_n_per_cycle() {
        let a = items(&(0..64).map(|i| i * 2).collect::<Vec<_>>());
        let b = items(&(0..64).map(|i| i * 2 + 1).collect::<Vec<_>>());
        let mut m = ComparatorMerger::new(16);
        let out = m.merge(&a, &b);
        assert_eq!(out.len(), 128);
        assert_eq!(m.stats().cycles, 8, "128 elements at 16/cycle");
        assert_eq!(m.stats().comparator_ops, 8 * 256);
        assert_eq!(m.stats().emitted, 128);
    }

    #[test]
    fn one_sided_input_passes_through() {
        let a = items(&[1, 2, 3, 4, 5]);
        let mut m = ComparatorMerger::new(2);
        let out = m.merge(&a, &[]);
        assert_eq!(out.len(), 5);
        assert_eq!(m.stats().cycles, 3); // ceil(5/2)
    }

    #[test]
    fn stats_accumulate_across_merges() {
        let mut m = ComparatorMerger::new(4);
        m.merge(&items(&[1, 2]), &items(&[3]));
        m.merge(&items(&[5]), &items(&[4]));
        assert_eq!(m.stats().emitted, 5);
        assert_eq!(m.stats().cycles, 2);
        m.reset_stats();
        assert_eq!(m.stats(), MergeStats::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = ComparatorMerger::new(0);
    }
}
