//! The two-phase clocking discipline of the paper's simulator.
//!
//! §III-A: "we built a cycle-accurate simulator in C++ to model the exact
//! behavior of the hardware. Each module is abstracted as a class with a
//! clock update method updating the internal state of this module in each
//! cycle, and a clock apply method, which simulates the flip-flops in the
//! circuit to make sure signals are updated correctly."
//!
//! [`Clocked`] is that abstraction: `clock_update` computes the cycle's
//! combinational results from the *pre-cycle* state; `clock_apply` commits
//! them, like flip-flops latching on the clock edge. [`Clock`] drives a
//! set of components so that intra-cycle evaluation order cannot leak
//! state between modules — the property that makes the merge-tree and
//! prefetcher models composable.

/// A hardware module driven by the two-phase clock.
pub trait Clocked {
    /// Phase 1: compute this cycle's outputs from the latched state.
    /// Must not expose new state to other components yet.
    fn clock_update(&mut self);

    /// Phase 2: latch the computed state (flip-flop edge).
    fn clock_apply(&mut self);
}

/// Drives a collection of clocked components and counts cycles.
///
/// # Example
///
/// ```
/// use sparch_engine::clocked::{Clock, Clocked, PipelineReg};
///
/// let mut clock = Clock::new();
/// let mut stage: PipelineReg<u32> = PipelineReg::new();
/// stage.set_input(Some(7));
/// clock.tick(&mut [&mut stage]);
/// assert_eq!(stage.output(), Some(7)); // visible one cycle later
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Clock { cycles: 0 }
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances one cycle: update-phase over every component, then
    /// apply-phase over every component.
    pub fn tick(&mut self, components: &mut [&mut dyn Clocked]) {
        for c in components.iter_mut() {
            c.clock_update();
        }
        for c in components.iter_mut() {
            c.clock_apply();
        }
        self.cycles += 1;
    }

    /// Ticks until `done` returns true or `max_cycles` elapse.
    /// Returns whether `done` fired.
    pub fn run_until(
        &mut self,
        components: &mut [&mut dyn Clocked],
        max_cycles: u64,
        mut done: impl FnMut() -> bool,
    ) -> bool {
        for _ in 0..max_cycles {
            if done() {
                return true;
            }
            self.tick(components);
        }
        done()
    }
}

/// A single pipeline register: the simplest clocked component, with a
/// one-cycle input→output latency. Useful as glue between larger models
/// and as a reference implementation of the discipline.
#[derive(Debug, Clone, Default)]
pub struct PipelineReg<T: Clone> {
    input: Option<T>,
    staged: Option<T>,
    output: Option<T>,
}

impl<T: Clone> PipelineReg<T> {
    /// An empty register.
    pub fn new() -> Self {
        PipelineReg {
            input: None,
            staged: None,
            output: None,
        }
    }

    /// Presents a value at the register's input for this cycle.
    pub fn set_input(&mut self, value: Option<T>) {
        self.input = value;
    }

    /// The value latched at the last clock edge.
    pub fn output(&self) -> Option<T> {
        self.output.clone()
    }
}

impl<T: Clone> Clocked for PipelineReg<T> {
    fn clock_update(&mut self) {
        self.staged = self.input.take();
    }

    fn clock_apply(&mut self) {
        self.output = self.staged.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_has_one_cycle_latency() {
        let mut clock = Clock::new();
        let mut reg: PipelineReg<u32> = PipelineReg::new();
        reg.set_input(Some(5));
        assert_eq!(reg.output(), None, "not visible before the edge");
        clock.tick(&mut [&mut reg]);
        assert_eq!(reg.output(), Some(5));
        clock.tick(&mut [&mut reg]);
        assert_eq!(reg.output(), None, "input was not re-presented");
        assert_eq!(clock.cycles(), 2);
    }

    #[test]
    fn chained_registers_do_not_skip_cycles() {
        // The two-phase discipline must prevent a value racing through
        // two registers in one cycle regardless of evaluation order.
        let mut clock = Clock::new();
        let mut a: PipelineReg<u32> = PipelineReg::new();
        let mut b: PipelineReg<u32> = PipelineReg::new();
        a.set_input(Some(9));
        clock.tick(&mut [&mut a, &mut b]);
        b.set_input(a.output());
        assert_eq!(
            b.output(),
            None,
            "value must take two edges to cross two registers"
        );
        clock.tick(&mut [&mut a, &mut b]);
        assert_eq!(b.output(), Some(9));

        // Same behaviour with reversed evaluation order.
        let mut clock = Clock::new();
        let mut a: PipelineReg<u32> = PipelineReg::new();
        let mut b: PipelineReg<u32> = PipelineReg::new();
        a.set_input(Some(4));
        clock.tick(&mut [&mut b, &mut a]);
        b.set_input(a.output());
        clock.tick(&mut [&mut b, &mut a]);
        assert_eq!(b.output(), Some(4));
    }

    #[test]
    fn run_until_stops_at_condition() {
        let mut clock = Clock::new();
        let mut reg: PipelineReg<u8> = PipelineReg::new();
        reg.set_input(Some(1));
        let fired = clock.run_until(&mut [&mut reg], 10, clock_probe);
        // trivially false probe: runs out the budget
        assert!(!fired);
        assert_eq!(clock.cycles(), 10);
        fn clock_probe() -> bool {
            false
        }
    }
}
