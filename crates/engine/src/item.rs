//! The stream element that flows through the merge hardware.

use serde::{Deserialize, Serialize};
use sparch_sparse::{Index, Triple, Value};

/// One element of a partial-matrix stream: a packed 64-bit coordinate
/// (row in the high 32 bits, column in the low 32 bits — Table I's
/// "64-bit index (32 bits for row and 32 bits for column)") and a
/// double-precision value.
///
/// Ordering by `coord` is exactly "sorted by row index then column index"
/// (§II-A), so the merge hardware needs a single 64-bit comparator per
/// element pair.
///
/// # Example
///
/// ```
/// use sparch_engine::MergeItem;
///
/// let a = MergeItem::new(0, 7, 1.5);
/// let b = MergeItem::new(1, 0, 2.5);
/// assert!(a.coord < b.coord); // row-major order
/// assert_eq!(a.row(), 0);
/// assert_eq!(a.col(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeItem {
    /// Packed `(row << 32) | col` coordinate.
    pub coord: u64,
    /// The double-precision value.
    pub value: Value,
}

impl MergeItem {
    /// Creates an item from a row/column pair.
    pub fn new(row: Index, col: Index, value: Value) -> Self {
        MergeItem {
            coord: (row as u64) << 32 | col as u64,
            value,
        }
    }

    /// Row index (high 32 bits of the coordinate).
    pub fn row(&self) -> Index {
        (self.coord >> 32) as Index
    }

    /// Column index (low 32 bits of the coordinate).
    pub fn col(&self) -> Index {
        self.coord as u32
    }

    /// Converts back to a `(row, col, value)` triple.
    pub fn to_triple(self) -> Triple {
        (self.row(), self.col(), self.value)
    }
}

impl From<Triple> for MergeItem {
    fn from((r, c, v): Triple) -> Self {
        MergeItem::new(r, c, v)
    }
}

/// Converts a sorted triple slice into a stream of merge items.
pub fn stream_of(triples: &[Triple]) -> Vec<MergeItem> {
    triples.iter().map(|&t| MergeItem::from(t)).collect()
}

/// Checks that a stream is sorted by coordinate (strictly, i.e. duplicate
/// coordinates already folded).
pub fn is_sorted_unique(stream: &[MergeItem]) -> bool {
    stream.windows(2).all(|w| w[0].coord < w[1].coord)
}

/// Checks that a stream is sorted by coordinate, duplicates allowed.
pub fn is_sorted(stream: &[MergeItem]) -> bool {
    stream.windows(2).all(|w| w[0].coord <= w[1].coord)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let item = MergeItem::new(123, 456, -7.5);
        assert_eq!(item.row(), 123);
        assert_eq!(item.col(), 456);
        assert_eq!(item.to_triple(), (123, 456, -7.5));
    }

    #[test]
    fn coordinate_order_is_row_major() {
        let a = MergeItem::new(0, u32::MAX, 0.0);
        let b = MergeItem::new(1, 0, 0.0);
        assert!(a.coord < b.coord);
    }

    #[test]
    fn extreme_indices_pack_safely() {
        let item = MergeItem::new(u32::MAX, u32::MAX, 1.0);
        assert_eq!(item.row(), u32::MAX);
        assert_eq!(item.col(), u32::MAX);
    }

    #[test]
    fn sortedness_checks() {
        let s = stream_of(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        assert!(is_sorted(&s));
        assert!(is_sorted_unique(&s));
        let dup = stream_of(&[(0, 0, 1.0), (0, 0, 2.0)]);
        assert!(is_sorted(&dup));
        assert!(!is_sorted_unique(&dup));
        let bad = stream_of(&[(1, 0, 1.0), (0, 0, 2.0)]);
        assert!(!is_sorted(&bad));
    }
}
