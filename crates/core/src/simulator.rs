//! The whole-task SpArch simulator (paper §II-E, Figure 10).
//!
//! One [`SpArchSim::run`] models a complete `C = A × B` task:
//!
//! 1. the left matrix is viewed by condensed columns (§II-B) — or by
//!    original CSC columns when the condensing ablation is off,
//! 2. the scheduler (§II-C) turns the column sizes into a merge plan,
//! 3. the MatB row accesses implied by the plan drive the windowed-Bélády
//!    prefetch buffer (§II-D), attributing exact DRAM reads per round,
//! 4. each round multiplies its fresh columns, streams them together with
//!    re-fetched partial results through the merge tree, folds duplicate
//!    coordinates, and writes the output back (partial) or out (final),
//! 5. per-round cycles are the max of the memory-bound and compute-bound
//!    times plus startup latencies.
//!
//! The result matrix is exact; traffic is exact given the model's
//! element-granularity layouts; cycles/energy come from the calibrated
//! cost models.

use crate::condense::{CondensedElement, CondensedView};
use crate::config::SpArchConfig;
use crate::pipeline::{kway_merge_fold, CostParams, RoundCost};
use crate::prefetch::RowPrefetcher;
use crate::report::{PerfSummary, SimReport};
use crate::sched::{MergePlan, PlanNode};
use sparch_engine::{HierarchicalMerger, MergeItem};
use sparch_mem::{ActivityCounts, AreaModel, TrafficCategory, TrafficCounter};
use sparch_sparse::{Csr, CsrBuilder, Index};

/// The SpArch accelerator simulator.
///
/// # Example
///
/// ```
/// use sparch_core::{SpArchConfig, SpArchSim};
/// use sparch_sparse::gen;
///
/// let a = gen::rmat_graph500(128, 4, 7);
/// let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
/// assert_eq!(report.result().rows(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct SpArchSim {
    config: SpArchConfig,
}

impl SpArchSim {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SpArchConfig::validate`]).
    pub fn new(config: SpArchConfig) -> Self {
        config.validate();
        SpArchSim { config }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SpArchConfig {
        &self.config
    }

    /// Simulates `C = A × B`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn run(&self, a: &Csr, b: &Csr) -> SimReport {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let cfg = &self.config;

        // ------------------------------------------------------------------
        // 1. Left-matrix view: condensed columns or original CSC columns.
        // ------------------------------------------------------------------
        let leaves: Vec<Vec<CondensedElement>> = if cfg.condensing {
            let view = CondensedView::new(a);
            (0..view.num_cols())
                .map(|j| view.col(j).collect())
                .collect()
        } else {
            let csc = a.to_csc();
            (0..a.cols())
                .filter(|&k| csc.col_nnz(k) > 0)
                .map(|k| {
                    let (rows, vals) = csc.col(k);
                    rows.iter()
                        .zip(vals)
                        .map(|(&r, &v)| CondensedElement {
                            row: r,
                            orig_col: k as Index,
                            value: v,
                        })
                        .collect()
                })
                .collect()
        };
        let partial_matrices = leaves.len();

        // ------------------------------------------------------------------
        // 2. Merge plan from estimated column sizes.
        // ------------------------------------------------------------------
        let leaf_weights: Vec<u64> = leaves
            .iter()
            .map(|col| {
                col.iter()
                    .map(|e| b.row_nnz(e.orig_col as usize) as u64)
                    .sum()
            })
            .collect();
        let plan = MergePlan::build(cfg.scheduler, &leaf_weights, cfg.merge_ways());
        let estimated_total_weight = plan.estimated_total_weight();

        // Rounds to execute: the plan's rounds, or one pass-through round
        // covering all leaves when no merging is needed (0 or 1 leaf).
        let pseudo_rounds: Vec<Vec<PlanNode>> = if plan.rounds.is_empty() {
            vec![(0..leaves.len()).map(PlanNode::Leaf).collect()]
        } else {
            plan.rounds.iter().map(|r| r.children.clone()).collect()
        };
        let num_rounds = pseudo_rounds.len();

        // ------------------------------------------------------------------
        // 3. MatB access sequence (round-robin across each round's fresh
        //    columns, Figure 7's load sequence) drives the prefetcher.
        // ------------------------------------------------------------------
        let mut accesses: Vec<Index> = Vec::new();
        let mut round_access_counts: Vec<usize> = Vec::with_capacity(num_rounds);
        for children in &pseudo_rounds {
            let round_cols: Vec<Vec<crate::condense::CondensedElement>> = children
                .iter()
                .filter_map(|&n| match n {
                    PlanNode::Leaf(i) => Some(leaves[i].clone()),
                    PlanNode::Round(_) => None,
                })
                .collect();
            let before = accesses.len();
            accesses.extend(crate::fetch::ColumnFetcher::new(&round_cols).map(|e| e.orig_col));
            round_access_counts.push(accesses.len() - before);
        }
        let mut prefetcher = RowPrefetcher::new(b, &cfg.prefetch, accesses);

        // ------------------------------------------------------------------
        // 4 + 5. Execute rounds, accounting traffic, cycles and activity.
        // ------------------------------------------------------------------
        let cost_params = CostParams {
            bytes_per_cycle: cfg.hbm.bytes_per_cycle(),
            dram_latency: cfg.hbm.access_latency,
            tree_layers: cfg.tree_layers,
            merger_width: cfg.merger_width,
            multipliers: cfg.multipliers,
            lookahead: cfg.prefetch.lookahead,
            buffer_lines: cfg.prefetch.lines,
            fetchers: cfg.prefetch.fetchers,
        };
        let ops_per_element_level = HierarchicalMerger::new(cfg.merger_width, cfg.merger_chunk)
            .comparators() as f64
            / cfg.merger_width as f64;

        let mut traffic = TrafficCounter::new();
        let mut activity = ActivityCounts::default();
        let mut total_cycles = 0u64;
        let mut round_outputs: Vec<Option<Vec<MergeItem>>> = Vec::new();
        let mut final_stream: Vec<MergeItem> = Vec::new();

        for (round_idx, children) in pseudo_rounds.iter().enumerate() {
            let is_final = round_idx + 1 == num_rounds;
            let mut cost = RoundCost::default();

            // MatB reads for this round's fresh columns, via the
            // prefetcher's exact per-access accounting.
            let misses_before = prefetcher.stats().line_misses;
            let mut mat_b_bytes = 0u64;
            let mut row_fetches = 0u64;
            for _ in 0..round_access_counts[round_idx] {
                let bytes = prefetcher.access_next();
                mat_b_bytes += bytes;
                if bytes > 0 {
                    row_fetches += 1;
                }
            }
            traffic.record(TrafficCategory::MatB, mat_b_bytes);
            cost.line_misses = prefetcher.stats().line_misses - misses_before;
            if !cfg.prefetch.enabled {
                cost.unhidden_fetches = row_fetches;
            }

            // Generate/fetch the child streams.
            let mut partial_read_bytes = 0u64;
            let mut streams: Vec<Vec<MergeItem>> = Vec::with_capacity(children.len());
            for &child in children {
                match child {
                    PlanNode::Leaf(i) => {
                        let col = &leaves[i];
                        let mut stream = Vec::new();
                        for e in col {
                            let (cols, vals) = b.row(e.orig_col as usize);
                            for (&c, &v) in cols.iter().zip(vals) {
                                stream.push(MergeItem::new(e.row, c, e.value * v));
                            }
                        }
                        cost.multiplies += stream.len() as u64;
                        cost.mat_a_elements += col.len() as u64;
                        traffic.record(TrafficCategory::MatA, col.len() as u64 * 12);
                        activity.fetcher_elements += col.len() as u64;
                        streams.push(stream);
                    }
                    PlanNode::Round(r) => {
                        let stream = round_outputs[r]
                            .take()
                            .expect("plan consumes each round once");
                        partial_read_bytes += stream.len() as u64 * 16;
                        streams.push(stream);
                    }
                }
            }
            traffic.record(TrafficCategory::PartialRead, partial_read_bytes);

            let input_elements: u64 = streams.iter().map(|s| s.len() as u64).sum();
            let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
            let (merged, adds) = kway_merge_fold(&refs);
            drop(streams);

            let out_bytes = if is_final {
                merged.len() as u64 * 12 + (a.rows() as u64 + 1) * 8
            } else {
                merged.len() as u64 * 16
            };
            traffic.record(
                if is_final {
                    TrafficCategory::FinalWrite
                } else {
                    TrafficCategory::PartialWrite
                },
                out_bytes,
            );

            // Cycle estimate for the round.
            cost.input_elements = input_elements;
            cost.output_elements = merged.len() as u64;
            cost.dram_bytes =
                cost.mat_a_elements * 12 + mat_b_bytes + partial_read_bytes + out_bytes;
            total_cycles += cost_params.round_cycles(&cost);

            // Activity accounting: each element crosses one merger level
            // per doubling of the round's fan-in.
            let levels = (children.len().max(2) as f64).log2().ceil() as u64;
            activity.multiplies += cost.multiplies;
            activity.adds += adds;
            activity.merge_tree_elements += input_elements * levels;
            activity.comparator_ops +=
                (input_elements as f64 * levels as f64 * ops_per_element_level) as u64;
            activity.writer_elements += merged.len() as u64;

            if is_final {
                final_stream = merged;
            } else {
                round_outputs.push(Some(merged));
            }
        }

        // ------------------------------------------------------------------
        // Result assembly and report.
        // ------------------------------------------------------------------
        let mut builder = CsrBuilder::with_capacity(a.rows(), b.cols(), final_stream.len());
        for item in &final_stream {
            builder.push(item.row(), item.col(), item.value);
        }
        let result = builder.finish();

        let prefetch_stats = *prefetcher.stats();
        activity.buffer_bytes =
            prefetch_stats.buffer_read_bytes + prefetch_stats.buffer_write_bytes;
        activity.dram_read_bytes = traffic.read_bytes();
        activity.dram_write_bytes = traffic.write_bytes();

        let multiplies = activity.multiplies;
        let flops = 2 * multiplies;
        let seconds = total_cycles as f64 / cfg.hbm.clock_hz;
        let busy_cycles = (traffic.total_bytes() as f64 / cfg.hbm.bytes_per_cycle()).ceil() as u64;
        let perf = PerfSummary {
            cycles: total_cycles,
            seconds,
            gflops: if seconds > 0.0 {
                flops as f64 / seconds / 1e9
            } else {
                0.0
            },
            multiplies,
            flops,
            output_nnz: result.nnz() as u64,
            rounds: num_rounds,
            bandwidth_utilization: if total_cycles > 0 {
                (busy_cycles as f64 / total_cycles as f64).min(1.0)
            } else {
                0.0
            },
        };

        let energy = cfg.energy.estimate(&activity);
        let area = AreaModel {
            lookahead_elements: cfg.prefetch.lookahead,
            buffer_bytes: cfg.prefetch.capacity_bytes() as usize,
            multipliers: cfg.multipliers,
            tree_layers: cfg.tree_layers,
            merger_width: cfg.merger_width,
            writer_elements: cfg.writer_fifo,
        }
        .estimate();

        SimReport::new(
            result,
            traffic,
            perf,
            prefetch_stats,
            activity,
            energy,
            area,
            partial_matrices,
            estimated_total_weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use sparch_sparse::{algo, gen, Dense};

    fn check_exact(a: &Csr, b: &Csr, config: SpArchConfig) -> SimReport {
        let report = SpArchSim::new(config).run(a, b);
        let reference = algo::gustavson(a, b);
        assert!(
            report.result().approx_eq(&reference, 1e-9),
            "simulated result differs from software reference"
        );
        report
    }

    #[test]
    fn exact_result_on_random_square() {
        let a = gen::uniform_random(120, 120, 700, 1);
        let b = gen::uniform_random(120, 120, 700, 2);
        let report = check_exact(&a, &b, SpArchConfig::default());
        assert!(report.perf.cycles > 0);
        assert!(report.perf.gflops > 0.0);
        assert_eq!(report.perf.multiplies, algo::multiply_flops(&a, &b));
    }

    #[test]
    fn exact_result_on_rectangular() {
        let a = gen::uniform_random(60, 90, 400, 3);
        let b = gen::uniform_random(90, 40, 350, 4);
        check_exact(&a, &b, SpArchConfig::default());
    }

    #[test]
    fn exact_result_on_powerlaw_squared() {
        let a = gen::rmat_graph500(256, 8, 5);
        check_exact(&a, &a, SpArchConfig::default());
    }

    #[test]
    fn exact_under_all_ablations() {
        let a = gen::rmat_graph500(128, 6, 6);
        let b = gen::rmat_graph500(128, 6, 7);
        for (name, config) in SpArchConfig::ablation_ladder() {
            let report = SpArchSim::new(config).run(&a, &b);
            let reference = algo::gustavson(&a, &b);
            assert!(
                report.result().approx_eq(&reference, 1e-9),
                "ablation '{name}' produced a wrong result"
            );
        }
    }

    #[test]
    fn multi_round_schedule_still_exact() {
        // Tiny tree (2 layers = 4 ways) forces many rounds.
        let a = gen::uniform_random(100, 100, 1500, 8);
        let config = SpArchConfig::default().with_tree_layers(2);
        let report = check_exact(&a, &a, config);
        assert!(report.perf.rounds > 3, "expected multiple rounds");
        assert!(
            report.traffic.partial_bytes() > 0,
            "multi-round merging must spill partials"
        );
    }

    #[test]
    fn single_round_spills_nothing() {
        // Few condensed columns fit the 64-way tree in one round.
        let a = gen::uniform_random(200, 200, 1200, 9);
        let report = check_exact(&a, &a, SpArchConfig::default());
        assert_eq!(report.perf.rounds, 1);
        assert_eq!(report.traffic.partial_bytes(), 0);
    }

    #[test]
    fn condensing_reduces_partial_matrices() {
        let a = gen::uniform_random(300, 300, 1800, 10);
        let with = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let without = SpArchSim::new(SpArchConfig::default().without_condensing()).run(&a, &a);
        assert!(
            with.partial_matrices * 10 < without.partial_matrices,
            "{} vs {}",
            with.partial_matrices,
            without.partial_matrices
        );
        assert!(with.traffic.total_bytes() < without.traffic.total_bytes());
    }

    #[test]
    fn huffman_beats_random_on_traffic() {
        let a = gen::rmat_graph500(512, 8, 11);
        let base = SpArchConfig::default()
            .with_tree_layers(3)
            .without_prefetcher();
        let huffman = SpArchSim::new(base.clone()).run(&a, &a);
        let random = SpArchSim::new(base.with_scheduler(SchedulerKind::Random(5))).run(&a, &a);
        assert!(
            huffman.traffic.partial_bytes() <= random.traffic.partial_bytes(),
            "huffman {} vs random {}",
            huffman.traffic.partial_bytes(),
            random.traffic.partial_bytes()
        );
    }

    #[test]
    fn prefetcher_reduces_mat_b_traffic() {
        let a = gen::rmat_graph500(512, 8, 12);
        let with = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let without = SpArchSim::new(SpArchConfig::default().without_prefetcher()).run(&a, &a);
        let b_with = with.traffic.bytes(TrafficCategory::MatB);
        let b_without = without.traffic.bytes(TrafficCategory::MatB);
        assert!(
            b_with < b_without,
            "prefetcher must reduce B reads: {b_with} vs {b_without}"
        );
        assert!(with.prefetch.hit_rate() > 0.0);
    }

    #[test]
    fn identity_product() {
        let i = Csr::identity(50);
        let report = check_exact(&i, &i, SpArchConfig::default());
        assert_eq!(report.result().nnz(), 50);
        assert_eq!(
            report.partial_matrices, 1,
            "identity condenses to one column"
        );
    }

    #[test]
    fn empty_matrix_product() {
        let a = Csr::zero(10, 10);
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        assert_eq!(report.result().nnz(), 0);
        assert_eq!(report.perf.multiplies, 0);
    }

    #[test]
    fn known_small_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[0.0, 4.0], &[5.0, 0.0]]).to_csr();
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &b);
        assert_eq!(
            report.result().to_dense(),
            Dense::from_rows(&[&[10.0, 4.0], &[15.0, 0.0]])
        );
    }

    #[test]
    fn traffic_categories_are_consistent() {
        let a = gen::uniform_random(150, 150, 900, 13);
        let report = SpArchSim::new(SpArchConfig::default().with_tree_layers(2)).run(&a, &a);
        let t = &report.traffic;
        // A is read exactly once: nnz * 12 bytes.
        assert_eq!(t.bytes(TrafficCategory::MatA), a.nnz() as u64 * 12);
        // Partial writes equal partial reads (every spill is re-read once).
        assert_eq!(
            t.bytes(TrafficCategory::PartialWrite),
            t.bytes(TrafficCategory::PartialRead)
        );
        // Final write covers the result.
        assert!(t.bytes(TrafficCategory::FinalWrite) >= report.perf.output_nnz * 12);
        // Energy components respond to the activity.
        assert!(report.energy_total() > 0.0);
        assert!(report.perf.bandwidth_utilization > 0.0);
        assert!(report.perf.bandwidth_utilization <= 1.0);
    }
}
