//! The whole-task SpArch simulator (paper §II-E, Figure 10).
//!
//! One [`SpArchSim::run`] models a complete `C = A × B` task as four
//! explicit stages (each also callable on its own for instrumentation):
//!
//! 1. **plan** ([`SpArchSim::plan_stage`]) — the left matrix is viewed by
//!    condensed columns (§II-B) — or by original CSC columns when the
//!    condensing ablation is off — and the scheduler (§II-C) turns the
//!    column sizes into a merge plan,
//! 2. **prefetch** ([`SpArchSim::prefetch_stage`]) — the MatB row
//!    accesses implied by the plan drive the windowed-Bélády prefetch
//!    buffer (§II-D), attributing exact DRAM reads per round,
//! 3. **round-execute** ([`SpArchSim::execute_stage`]) — each round
//!    multiplies its fresh columns, streams them together with re-fetched
//!    partial results through the merge tree, folds duplicate coordinates
//!    and accounts traffic/cycles/activity; per-round cycles are the max
//!    of the memory-bound and compute-bound times plus startup latencies,
//! 4. **writeback** ([`SpArchSim::writeback_stage`]) — the final stream
//!    becomes the result matrix and the cost models produce the report.
//!
//! All stream buffers the execute stage touches live in a reusable
//! [`SimScratch`], so repeated runs ([`SpArchSim::run_with_scratch`])
//! allocate ~nothing on the round hot path — the property sharded
//! parameter sweeps rely on (see `sparch_exec`).
//!
//! The result matrix is exact; traffic is exact given the model's
//! element-granularity layouts; cycles/energy come from the calibrated
//! cost models.

use crate::condense::{CondensedElement, CondensedView};
use crate::config::SpArchConfig;
use crate::pipeline::{kway_merge_fold_with, CostParams, RoundCost};
use crate::prefetch::{PrefetchStats, RowPrefetcher};
use crate::report::{PerfSummary, SimReport};
use crate::sched::{MergePlan, PlanNode};
use crate::scratch::{RoundMatB, SimScratch};
use sparch_engine::HierarchicalMerger;
use sparch_mem::{ActivityCounts, AreaModel, TrafficCategory, TrafficCounter};
use sparch_sparse::{Csr, CsrBuilder, Index};

/// The SpArch accelerator simulator.
///
/// # Example
///
/// ```
/// use sparch_core::{SpArchConfig, SpArchSim};
/// use sparch_sparse::gen;
///
/// let a = gen::rmat_graph500(128, 4, 7);
/// let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
/// assert_eq!(report.result().rows(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct SpArchSim {
    config: SpArchConfig,
}

/// Output of the plan stage: the initial partial matrices and the merge
/// schedule over them.
#[derive(Debug, Clone)]
pub struct SimPlan {
    /// Condensed (or original-CSC) columns of the left operand — the
    /// initial partial matrices, by leaf id.
    pub leaves: Vec<Vec<CondensedElement>>,
    /// Exact multiplied-stream size of each leaf (Σ nnz of the B rows its
    /// elements touch) — the scheduler's leaf weights.
    pub leaf_weights: Vec<u64>,
    /// The scheduler's merge plan over the leaf weights.
    pub merge_plan: MergePlan,
    /// Rounds to execute: the plan's rounds, or one pass-through round
    /// covering all leaves when no merging is needed (0 or 1 leaf).
    pub rounds: Vec<Vec<PlanNode>>,
    /// Number of partial matrices before merging.
    pub partial_matrices: usize,
    /// The scheduler's estimated total node weight (Figure 8's metric).
    pub estimated_total_weight: u64,
    /// Rows of the result matrix (`a.rows()`): the final write includes
    /// the CSR row-pointer array, `(rows + 1) * 8` bytes.
    pub output_rows: usize,
}

/// Totals accumulated by the execute stage.
#[derive(Debug, Clone, Default)]
pub struct ExecTotals {
    /// Per-category DRAM traffic.
    pub traffic: TrafficCounter,
    /// Raw activity counts (for energy accounting).
    pub activity: ActivityCounts,
    /// Estimated cycles over all rounds.
    pub cycles: u64,
}

impl SpArchSim {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SpArchConfig::validate`]).
    pub fn new(config: SpArchConfig) -> Self {
        config.validate();
        SpArchSim { config }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SpArchConfig {
        &self.config
    }

    /// Simulates `C = A × B`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn run(&self, a: &Csr, b: &Csr) -> SimReport {
        self.run_with_scratch(a, b, &mut SimScratch::new())
    }

    /// Simulates `C = A × B`, reusing `scratch`'s buffers.
    ///
    /// Identical output to [`SpArchSim::run`]; feed one scratch a
    /// sequence of tasks (e.g. a parameter sweep on one worker thread)
    /// and the round hot path stops allocating after the first run.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn run_with_scratch(&self, a: &Csr, b: &Csr, scratch: &mut SimScratch) -> SimReport {
        let plan = self.plan_stage(a, b);
        let prefetch = self.prefetch_stage(&plan, b, scratch);
        let totals = self.execute_stage(&plan, b, scratch);
        self.writeback_stage(a, b, &plan, prefetch, totals, scratch)
    }

    /// **Stage 1 — plan.** Builds the left-matrix view (condensed columns
    /// or original CSC columns), estimates each leaf's multiplied size,
    /// and schedules the merge rounds.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn plan_stage(&self, a: &Csr, b: &Csr) -> SimPlan {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let cfg = &self.config;

        let leaves: Vec<Vec<CondensedElement>> = if cfg.condensing {
            let view = CondensedView::new(a);
            (0..view.num_cols())
                .map(|j| view.col(j).collect())
                .collect()
        } else {
            let csc = a.to_csc();
            (0..a.cols())
                .filter(|&k| csc.col_nnz(k) > 0)
                .map(|k| {
                    let (rows, vals) = csc.col(k);
                    rows.iter()
                        .zip(vals)
                        .map(|(&r, &v)| CondensedElement {
                            row: r,
                            orig_col: k as Index,
                            value: v,
                        })
                        .collect()
                })
                .collect()
        };
        let partial_matrices = leaves.len();

        let leaf_weights: Vec<u64> = leaves
            .iter()
            .map(|col| {
                col.iter()
                    .map(|e| b.row_nnz(e.orig_col as usize) as u64)
                    .sum()
            })
            .collect();
        let merge_plan = MergePlan::build(cfg.scheduler, &leaf_weights, cfg.merge_ways());
        let estimated_total_weight = merge_plan.estimated_total_weight();

        // Rounds to execute: the plan's rounds, or one pass-through round
        // covering all leaves when no merging is needed (0 or 1 leaf).
        let rounds: Vec<Vec<PlanNode>> = if merge_plan.rounds.is_empty() {
            vec![(0..leaves.len()).map(PlanNode::Leaf).collect()]
        } else {
            merge_plan
                .rounds
                .iter()
                .map(|r| r.children.clone())
                .collect()
        };

        SimPlan {
            leaves,
            leaf_weights,
            merge_plan,
            rounds,
            partial_matrices,
            estimated_total_weight,
            output_rows: a.rows(),
        }
    }

    /// **Stage 2 — prefetch.** Replays the whole-task MatB access
    /// sequence (round-robin across each round's fresh columns, Figure
    /// 7's load sequence) through the row prefetcher, leaving exact
    /// per-round DRAM-read accounting in `scratch` for the execute stage.
    pub fn prefetch_stage(
        &self,
        plan: &SimPlan,
        b: &Csr,
        scratch: &mut SimScratch,
    ) -> PrefetchStats {
        let cfg = &self.config;
        scratch.prepare_prefetch(plan.rounds.len());

        // Build the access list round by round, remembering each round's
        // share of it.
        let mut round_access_counts: Vec<usize> = Vec::with_capacity(plan.rounds.len());
        for children in &plan.rounds {
            let mut fresh = 0usize;
            for &child in children {
                if let PlanNode::Leaf(i) = child {
                    if fresh == scratch.round_cols.len() {
                        scratch.round_cols.push(Vec::new());
                    }
                    scratch.round_cols[fresh].clear();
                    scratch.round_cols[fresh].extend_from_slice(&plan.leaves[i]);
                    fresh += 1;
                }
            }
            let before = scratch.accesses.len();
            scratch.accesses.extend(
                crate::fetch::ColumnFetcher::new(&scratch.round_cols[..fresh]).map(|e| e.orig_col),
            );
            round_access_counts.push(scratch.accesses.len() - before);
        }

        let mut prefetcher =
            RowPrefetcher::new(b, &cfg.prefetch, std::mem::take(&mut scratch.accesses));
        for &count in &round_access_counts {
            let misses_before = prefetcher.stats().line_misses;
            let mut bytes = 0u64;
            let mut row_fetches = 0u64;
            for _ in 0..count {
                let access_bytes = prefetcher.access_next();
                bytes += access_bytes;
                if access_bytes > 0 {
                    row_fetches += 1;
                }
            }
            scratch.round_matb.push(RoundMatB {
                bytes,
                row_fetches,
                line_misses: prefetcher.stats().line_misses - misses_before,
            });
        }

        let stats = *prefetcher.stats();
        // Recycle the access list's storage for the next task.
        scratch.accesses = prefetcher.into_accesses();
        stats
    }

    /// **Stage 3 — round-execute.** Runs every merge round: multiplies
    /// the round's fresh columns, merges them with re-fetched partial
    /// results, folds duplicates, and accounts traffic, cycles and
    /// activity. The final round's stream is left in `scratch` for the
    /// writeback stage.
    ///
    /// This is the hot path: with a warmed-up `scratch` (same task run
    /// once before) it performs no heap allocation (pinned by
    /// `crates/core/tests/zero_alloc.rs`).
    ///
    /// # Panics
    ///
    /// Panics if [`SpArchSim::prefetch_stage`] did not leave per-round
    /// MatB accounting for this plan in `scratch` (only the round count
    /// is checkable — feeding a *different* plan with the same round
    /// count misattributes MatB traffic), or if the plan references the
    /// same round's output twice.
    pub fn execute_stage(&self, plan: &SimPlan, b: &Csr, scratch: &mut SimScratch) -> ExecTotals {
        let cfg = &self.config;
        let num_rounds = plan.rounds.len();
        assert_eq!(
            scratch.round_matb.len(),
            num_rounds,
            "prefetch stage must run before the execute stage"
        );
        scratch.prepare_execute(plan.leaves.len(), num_rounds);

        let cost_params = CostParams {
            bytes_per_cycle: cfg.hbm.bytes_per_cycle(),
            dram_latency: cfg.hbm.access_latency,
            tree_layers: cfg.tree_layers,
            merger_width: cfg.merger_width,
            multipliers: cfg.multipliers,
            lookahead: cfg.prefetch.lookahead,
            buffer_lines: cfg.prefetch.lines,
            fetchers: cfg.prefetch.fetchers,
        };
        let ops_per_element_level = HierarchicalMerger::new(cfg.merger_width, cfg.merger_chunk)
            .comparators() as f64
            / cfg.merger_width as f64;

        let mut totals = ExecTotals::default();
        let SimScratch {
            mult_streams,
            round_outputs,
            merge_heap,
            round_matb,
            round_consumed,
            ..
        } = scratch;

        for (round_idx, children) in plan.rounds.iter().enumerate() {
            let is_final = round_idx + 1 == num_rounds;
            let mut cost = RoundCost::default();

            // MatB reads for this round's fresh columns, attributed by
            // the prefetch stage's exact per-access accounting.
            let matb = round_matb[round_idx];
            totals.traffic.record(TrafficCategory::MatB, matb.bytes);
            cost.line_misses = matb.line_misses;
            if !cfg.prefetch.enabled {
                cost.unhidden_fetches = matb.row_fetches;
            }

            // Multiply the fresh columns into their leaf stream buffers;
            // partial inputs are read back from earlier rounds' outputs.
            let mut partial_read_bytes = 0u64;
            let mut input_elements = 0u64;
            for &child in children {
                match child {
                    PlanNode::Leaf(i) => {
                        let col = &plan.leaves[i];
                        let stream = &mut mult_streams[i];
                        stream.clear();
                        stream.reserve(plan.leaf_weights[i] as usize);
                        for e in col {
                            let (cols, vals) = b.row(e.orig_col as usize);
                            for (&c, &v) in cols.iter().zip(vals) {
                                stream.push(sparch_engine::MergeItem::new(e.row, c, e.value * v));
                            }
                        }
                        cost.multiplies += stream.len() as u64;
                        cost.mat_a_elements += col.len() as u64;
                        input_elements += stream.len() as u64;
                        totals
                            .traffic
                            .record(TrafficCategory::MatA, col.len() as u64 * 12);
                        totals.activity.fetcher_elements += col.len() as u64;
                    }
                    PlanNode::Round(r) => {
                        assert!(r < round_idx, "plan consumes only earlier rounds");
                        assert!(!round_consumed[r], "plan consumes each round once");
                        round_consumed[r] = true;
                        let len = round_outputs[r].len() as u64;
                        partial_read_bytes += len * 16;
                        input_elements += len;
                    }
                }
            }
            totals
                .traffic
                .record(TrafficCategory::PartialRead, partial_read_bytes);

            // Merge this round's streams into its output buffer. The
            // split keeps earlier rounds' outputs readable while the
            // current round's buffer is written.
            let (earlier, rest) = round_outputs.split_at_mut(round_idx);
            let out = &mut rest[0];
            let adds = kway_merge_fold_with(
                children.len(),
                |c| match children[c] {
                    PlanNode::Leaf(i) => mult_streams[i].as_slice(),
                    PlanNode::Round(r) => earlier[r].as_slice(),
                },
                out,
                merge_heap,
            );

            let out_bytes = if is_final {
                out.len() as u64 * 12 + (plan.output_rows as u64 + 1) * 8
            } else {
                out.len() as u64 * 16
            };
            totals.traffic.record(
                if is_final {
                    TrafficCategory::FinalWrite
                } else {
                    TrafficCategory::PartialWrite
                },
                out_bytes,
            );

            // Cycle estimate for the round.
            cost.input_elements = input_elements;
            cost.output_elements = out.len() as u64;
            cost.dram_bytes =
                cost.mat_a_elements * 12 + matb.bytes + partial_read_bytes + out_bytes;
            totals.cycles += cost_params.round_cycles(&cost);

            // Activity accounting: each element crosses one merger level
            // per doubling of the round's fan-in.
            let levels = (children.len().max(2) as f64).log2().ceil() as u64;
            totals.activity.multiplies += cost.multiplies;
            totals.activity.adds += adds;
            totals.activity.merge_tree_elements += input_elements * levels;
            totals.activity.comparator_ops +=
                (input_elements as f64 * levels as f64 * ops_per_element_level) as u64;
            totals.activity.writer_elements += out.len() as u64;
        }

        totals
    }

    /// **Stage 4 — writeback.** Assembles the result matrix from the
    /// final round's stream and closes the books: prefetcher activity,
    /// timing summary, energy and area.
    pub fn writeback_stage(
        &self,
        a: &Csr,
        b: &Csr,
        plan: &SimPlan,
        prefetch: PrefetchStats,
        mut totals: ExecTotals,
        scratch: &SimScratch,
    ) -> SimReport {
        let cfg = &self.config;
        let final_stream = scratch.final_stream(plan.rounds.len());

        let mut builder = CsrBuilder::with_capacity(a.rows(), b.cols(), final_stream.len());
        for item in final_stream {
            builder.push(item.row(), item.col(), item.value);
        }
        let result = builder.finish();

        totals.activity.buffer_bytes = prefetch.buffer_read_bytes + prefetch.buffer_write_bytes;
        totals.activity.dram_read_bytes = totals.traffic.read_bytes();
        totals.activity.dram_write_bytes = totals.traffic.write_bytes();

        let multiplies = totals.activity.multiplies;
        let flops = 2 * multiplies;
        let seconds = totals.cycles as f64 / cfg.hbm.clock_hz;
        let busy_cycles =
            (totals.traffic.total_bytes() as f64 / cfg.hbm.bytes_per_cycle()).ceil() as u64;
        let perf = PerfSummary {
            cycles: totals.cycles,
            seconds,
            gflops: if seconds > 0.0 {
                flops as f64 / seconds / 1e9
            } else {
                0.0
            },
            multiplies,
            flops,
            output_nnz: result.nnz() as u64,
            rounds: plan.rounds.len(),
            bandwidth_utilization: if totals.cycles > 0 {
                (busy_cycles as f64 / totals.cycles as f64).min(1.0)
            } else {
                0.0
            },
        };

        let energy = cfg.energy.estimate(&totals.activity);
        let area = AreaModel {
            lookahead_elements: cfg.prefetch.lookahead,
            buffer_bytes: cfg.prefetch.capacity_bytes() as usize,
            multipliers: cfg.multipliers,
            tree_layers: cfg.tree_layers,
            merger_width: cfg.merger_width,
            writer_elements: cfg.writer_fifo,
        }
        .estimate();

        SimReport::new(
            result,
            totals.traffic,
            perf,
            prefetch,
            totals.activity,
            energy,
            area,
            plan.partial_matrices,
            plan.estimated_total_weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use sparch_sparse::{algo, gen, Dense};

    fn check_exact(a: &Csr, b: &Csr, config: SpArchConfig) -> SimReport {
        let report = SpArchSim::new(config).run(a, b);
        let reference = algo::gustavson(a, b);
        assert!(
            report.result().approx_eq(&reference, 1e-9),
            "simulated result differs from software reference"
        );
        report
    }

    #[test]
    fn exact_result_on_random_square() {
        let a = gen::uniform_random(120, 120, 700, 1);
        let b = gen::uniform_random(120, 120, 700, 2);
        let report = check_exact(&a, &b, SpArchConfig::default());
        assert!(report.perf.cycles > 0);
        assert!(report.perf.gflops > 0.0);
        assert_eq!(report.perf.multiplies, algo::multiply_flops(&a, &b));
    }

    #[test]
    fn exact_result_on_rectangular() {
        let a = gen::uniform_random(60, 90, 400, 3);
        let b = gen::uniform_random(90, 40, 350, 4);
        check_exact(&a, &b, SpArchConfig::default());
    }

    #[test]
    fn exact_result_on_powerlaw_squared() {
        let a = gen::rmat_graph500(256, 8, 5);
        check_exact(&a, &a, SpArchConfig::default());
    }

    #[test]
    fn exact_under_all_ablations() {
        let a = gen::rmat_graph500(128, 6, 6);
        let b = gen::rmat_graph500(128, 6, 7);
        for (name, config) in SpArchConfig::ablation_ladder() {
            let report = SpArchSim::new(config).run(&a, &b);
            let reference = algo::gustavson(&a, &b);
            assert!(
                report.result().approx_eq(&reference, 1e-9),
                "ablation '{name}' produced a wrong result"
            );
        }
    }

    #[test]
    fn multi_round_schedule_still_exact() {
        // Tiny tree (2 layers = 4 ways) forces many rounds.
        let a = gen::uniform_random(100, 100, 1500, 8);
        let config = SpArchConfig::default().with_tree_layers(2);
        let report = check_exact(&a, &a, config);
        assert!(report.perf.rounds > 3, "expected multiple rounds");
        assert!(
            report.traffic.partial_bytes() > 0,
            "multi-round merging must spill partials"
        );
    }

    #[test]
    fn single_round_spills_nothing() {
        // Few condensed columns fit the 64-way tree in one round.
        let a = gen::uniform_random(200, 200, 1200, 9);
        let report = check_exact(&a, &a, SpArchConfig::default());
        assert_eq!(report.perf.rounds, 1);
        assert_eq!(report.traffic.partial_bytes(), 0);
    }

    #[test]
    fn condensing_reduces_partial_matrices() {
        let a = gen::uniform_random(300, 300, 1800, 10);
        let with = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let without = SpArchSim::new(SpArchConfig::default().without_condensing()).run(&a, &a);
        assert!(
            with.partial_matrices * 10 < without.partial_matrices,
            "{} vs {}",
            with.partial_matrices,
            without.partial_matrices
        );
        assert!(with.traffic.total_bytes() < without.traffic.total_bytes());
    }

    #[test]
    fn huffman_beats_random_on_traffic() {
        let a = gen::rmat_graph500(512, 8, 11);
        let base = SpArchConfig::default()
            .with_tree_layers(3)
            .without_prefetcher();
        let huffman = SpArchSim::new(base.clone()).run(&a, &a);
        let random = SpArchSim::new(base.with_scheduler(SchedulerKind::Random(5))).run(&a, &a);
        assert!(
            huffman.traffic.partial_bytes() <= random.traffic.partial_bytes(),
            "huffman {} vs random {}",
            huffman.traffic.partial_bytes(),
            random.traffic.partial_bytes()
        );
    }

    #[test]
    fn prefetcher_reduces_mat_b_traffic() {
        let a = gen::rmat_graph500(512, 8, 12);
        let with = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let without = SpArchSim::new(SpArchConfig::default().without_prefetcher()).run(&a, &a);
        let b_with = with.traffic.bytes(TrafficCategory::MatB);
        let b_without = without.traffic.bytes(TrafficCategory::MatB);
        assert!(
            b_with < b_without,
            "prefetcher must reduce B reads: {b_with} vs {b_without}"
        );
        assert!(with.prefetch.hit_rate() > 0.0);
    }

    #[test]
    fn identity_product() {
        let i = Csr::identity(50);
        let report = check_exact(&i, &i, SpArchConfig::default());
        assert_eq!(report.result().nnz(), 50);
        assert_eq!(
            report.partial_matrices, 1,
            "identity condenses to one column"
        );
    }

    #[test]
    fn empty_matrix_product() {
        let a = Csr::zero(10, 10);
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        assert_eq!(report.result().nnz(), 0);
        assert_eq!(report.perf.multiplies, 0);
    }

    #[test]
    fn known_small_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[0.0, 4.0], &[5.0, 0.0]]).to_csr();
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &b);
        assert_eq!(
            report.result().to_dense(),
            Dense::from_rows(&[&[10.0, 4.0], &[15.0, 0.0]])
        );
    }

    #[test]
    fn traffic_categories_are_consistent() {
        let a = gen::uniform_random(150, 150, 900, 13);
        let report = SpArchSim::new(SpArchConfig::default().with_tree_layers(2)).run(&a, &a);
        let t = &report.traffic;
        // A is read exactly once: nnz * 12 bytes.
        assert_eq!(t.bytes(TrafficCategory::MatA), a.nnz() as u64 * 12);
        // Partial writes equal partial reads (every spill is re-read once).
        assert_eq!(
            t.bytes(TrafficCategory::PartialWrite),
            t.bytes(TrafficCategory::PartialRead)
        );
        // Final write covers the result.
        assert!(t.bytes(TrafficCategory::FinalWrite) >= report.perf.output_nnz * 12);
        // Energy components respond to the activity.
        assert!(report.energy_total() > 0.0);
        assert!(report.perf.bandwidth_utilization > 0.0);
        assert!(report.perf.bandwidth_utilization <= 1.0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_tasks() {
        // One scratch fed a sequence of different tasks must produce the
        // same reports as fresh runs, including multi-round schedules.
        let mut scratch = SimScratch::new();
        let sim = SpArchSim::new(SpArchConfig::default().with_tree_layers(2));
        for seed in 0..4u64 {
            let a = gen::uniform_random(90, 90, 1200, seed);
            let fresh = sim.run(&a, &a);
            let reused = sim.run_with_scratch(&a, &a, &mut scratch);
            assert_eq!(fresh.result(), reused.result(), "seed {seed}");
            assert_eq!(fresh.traffic, reused.traffic, "seed {seed}");
            assert_eq!(fresh.perf, reused.perf, "seed {seed}");
            assert_eq!(fresh.prefetch, reused.prefetch, "seed {seed}");
        }
    }

    #[test]
    fn stages_compose_into_run() {
        let a = gen::rmat_graph500(128, 6, 21);
        let sim = SpArchSim::new(SpArchConfig::default().with_tree_layers(3));
        let mut scratch = SimScratch::new();
        let plan = sim.plan_stage(&a, &a);
        assert_eq!(plan.partial_matrices, plan.leaves.len());
        let prefetch = sim.prefetch_stage(&plan, &a, &mut scratch);
        let totals = sim.execute_stage(&plan, &a, &mut scratch);
        assert!(totals.cycles > 0);
        let report = sim.writeback_stage(&a, &a, &plan, prefetch, totals, &scratch);
        let direct = sim.run(&a, &a);
        assert_eq!(report.result(), direct.result());
        assert_eq!(report.perf, direct.perf);
        assert_eq!(report.traffic, direct.traffic);
    }

    #[test]
    #[should_panic(expected = "prefetch stage must run")]
    fn execute_requires_prefetch_accounting() {
        let a = gen::uniform_random(40, 40, 200, 3);
        let sim = SpArchSim::new(SpArchConfig::default());
        let plan = sim.plan_stage(&a, &a);
        let mut scratch = SimScratch::new();
        let _ = sim.execute_stage(&plan, &a, &mut scratch);
    }
}
