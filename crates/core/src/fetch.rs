//! The MatA column fetcher, look-ahead FIFO and distance-list builder
//! (paper §II-E, Figure 10 left column).
//!
//! "The MatA Column Fetcher receives control instructions from the
//! software scheduler, calculates the addresses of data in the selected
//! columns, and fetches the elements from the left matrix. Then the
//! fetched elements will be sent to a look-ahead FIFO. The Distance List
//! Builder will process the look-ahead FIFO and calculates the next use
//! time of each row. The row index and next use time are provided to MatB
//! Row Prefetcher."
//!
//! [`ColumnFetcher`] produces the interleaved element stream of a round's
//! condensed columns (Figure 7's load sequence); [`DistanceListBuilder`]
//! watches a bounded look-ahead window of that stream and answers the
//! replacement policy's query — *when is row `r` next used?* — exactly the
//! signal the windowed-Bélády buffer in [`crate::prefetch`] consumes.

use crate::condense::CondensedElement;
use sparch_engine::Clocked;
use sparch_mem::Fifo;
use sparch_sparse::Index;
use std::collections::HashMap;

/// Streams the elements of a round's columns in the hardware load order:
/// round-robin across the active columns, one element each (Figure 7,
/// "if the merger has parallelism of 4, we load four condensed columns
/// together").
///
/// # Example
///
/// ```
/// use sparch_core::fetch::ColumnFetcher;
/// use sparch_core::CondensedView;
/// use sparch_sparse::Dense;
///
/// let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]).to_csr();
/// let view = CondensedView::new(&a);
/// let cols: Vec<Vec<_>> = (0..view.num_cols()).map(|j| view.col(j).collect()).collect();
/// let order: Vec<u32> = ColumnFetcher::new(&cols).map(|e| e.orig_col).collect();
/// // col0 = [(r0,c0),(r1,c0)], col1 = [(r0,c1)]; round-robin: c0, c1, c0.
/// assert_eq!(order, vec![0, 1, 0]);
/// ```
#[derive(Debug)]
pub struct ColumnFetcher<'a> {
    columns: &'a [Vec<CondensedElement>],
    cursors: Vec<usize>,
    slot: usize,
    exhausted: usize,
}

impl<'a> ColumnFetcher<'a> {
    /// Creates a fetcher over the round's columns.
    pub fn new(columns: &'a [Vec<CondensedElement>]) -> Self {
        let exhausted = columns.iter().filter(|c| c.is_empty()).count();
        ColumnFetcher {
            columns,
            cursors: vec![0; columns.len()],
            slot: 0,
            exhausted,
        }
    }

    /// Total elements remaining.
    pub fn remaining(&self) -> usize {
        self.columns
            .iter()
            .zip(&self.cursors)
            .map(|(col, &cur)| col.len() - cur)
            .sum()
    }
}

impl Iterator for ColumnFetcher<'_> {
    type Item = CondensedElement;

    fn next(&mut self) -> Option<CondensedElement> {
        if self.columns.is_empty() || self.exhausted == self.columns.len() {
            return None;
        }
        loop {
            let slot = self.slot;
            self.slot = (self.slot + 1) % self.columns.len();
            let cursor = self.cursors[slot];
            if cursor < self.columns[slot].len() {
                self.cursors[slot] += 1;
                if self.cursors[slot] == self.columns[slot].len() {
                    self.exhausted += 1;
                }
                return Some(self.columns[slot][cursor]);
            }
        }
    }
}

/// Maintains next-use distances over a bounded look-ahead window of the
/// element stream — the hardware's distance list.
///
/// The builder holds the next `lookahead` elements in a FIFO and a
/// row → positions index over that window only, mirroring the hardware's
/// bounded visibility: queries beyond the window honestly answer
/// [`DistanceListBuilder::UNKNOWN`].
#[derive(Debug)]
pub struct DistanceListBuilder {
    window: Fifo<(u64, Index)>,
    positions: HashMap<Index, Vec<u64>>,
    /// Absolute position of the next element to be consumed.
    head_pos: u64,
    /// Absolute position of the next element to be admitted.
    tail_pos: u64,
}

impl DistanceListBuilder {
    /// Distance reported when the row does not appear within the window.
    pub const UNKNOWN: u64 = u64::MAX;

    /// Creates a builder with a `lookahead`-element window.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead == 0`.
    pub fn new(lookahead: usize) -> Self {
        DistanceListBuilder {
            window: Fifo::new(lookahead),
            positions: HashMap::new(),
            head_pos: 0,
            tail_pos: 0,
        }
    }

    /// Admits the next stream element (by the row of B it will access).
    /// Returns false when the window is full (producer must stall).
    pub fn admit(&mut self, row: Index) -> bool {
        if self.window.push((self.tail_pos, row)).is_err() {
            return false;
        }
        self.positions.entry(row).or_default().push(self.tail_pos);
        self.tail_pos += 1;
        true
    }

    /// Consumes the oldest element, advancing the window.
    pub fn consume(&mut self) -> Option<Index> {
        let (pos, row) = self.window.pop()?;
        debug_assert_eq!(pos, self.head_pos);
        self.head_pos += 1;
        let entry = self.positions.get_mut(&row).expect("admitted row indexed");
        debug_assert_eq!(entry.first(), Some(&pos));
        entry.remove(0);
        if entry.is_empty() {
            self.positions.remove(&row);
        }
        Some(row)
    }

    /// Elements currently visible.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Admissions the window can still take before producers must stall.
    pub fn free(&self) -> usize {
        self.window.free()
    }

    /// Whether the window holds no elements.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Distance (in stream elements from the current head) to the next use
    /// of `row`, or [`Self::UNKNOWN`] if it does not appear in the window.
    /// This is the "next use time" handed to the MatB row prefetcher.
    pub fn next_use_distance(&self, row: Index) -> u64 {
        self.positions
            .get(&row)
            .and_then(|v| v.first())
            .map(|&pos| pos - self.head_pos)
            .unwrap_or(Self::UNKNOWN)
    }
}

/// Cycle-level coupling of the MatA column fetcher and the look-ahead
/// FIFO, driven through the [`Clocked`] two-phase discipline.
///
/// Each cycle, `clock_update` stages up to `per_cycle` elements from the
/// fetcher (bounded by the window's free space — backpressure), and
/// `clock_apply` latches them into the distance-list window. Distance
/// queries therefore always observe the window as of the last clock edge,
/// which is the flip-flop boundary between the fetcher and the prefetcher
/// in the hardware (Figure 10).
///
/// # Example
///
/// ```
/// use sparch_core::fetch::FetchPipeline;
/// use sparch_core::CondensedView;
/// use sparch_engine::{Clock, Clocked};
/// use sparch_sparse::Dense;
///
/// let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]).to_csr();
/// let view = CondensedView::new(&a);
/// let cols: Vec<Vec<_>> = (0..view.num_cols()).map(|j| view.col(j).collect()).collect();
/// let mut pipe = FetchPipeline::new(&cols, 8, 2);
/// assert_eq!(pipe.window().len(), 0); // nothing latched before the edge
/// let mut clock = Clock::new();
/// clock.tick(&mut [&mut pipe]);
/// assert_eq!(pipe.window().len(), 2); // first two elements latched
/// ```
#[derive(Debug)]
pub struct FetchPipeline<'a> {
    fetcher: ColumnFetcher<'a>,
    window: DistanceListBuilder,
    per_cycle: usize,
    staged: Vec<CondensedElement>,
    /// Elements latched into the window over the pipeline's lifetime.
    delivered: u64,
}

impl<'a> FetchPipeline<'a> {
    /// Creates a pipeline streaming `columns` into a `lookahead`-element
    /// window at up to `per_cycle` elements per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead == 0` or `per_cycle == 0`.
    pub fn new(columns: &'a [Vec<CondensedElement>], lookahead: usize, per_cycle: usize) -> Self {
        assert!(
            per_cycle > 0,
            "pipeline must move at least one element per cycle"
        );
        FetchPipeline {
            fetcher: ColumnFetcher::new(columns),
            window: DistanceListBuilder::new(lookahead),
            per_cycle,
            staged: Vec::new(),
            delivered: 0,
        }
    }

    /// The look-ahead window, for next-use-distance queries.
    pub fn window(&self) -> &DistanceListBuilder {
        &self.window
    }

    /// Consumes the oldest windowed element (the multiplier took it),
    /// freeing window space for the next clock edge.
    pub fn consume(&mut self) -> Option<Index> {
        self.window.consume()
    }

    /// Elements latched into the window so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True when every element has been fetched, latched and consumed.
    pub fn is_done(&self) -> bool {
        self.fetcher.remaining() == 0 && self.staged.is_empty() && self.window.is_empty()
    }
}

impl Clocked for FetchPipeline<'_> {
    fn clock_update(&mut self) {
        // Stage only what the window is guaranteed to accept at the edge:
        // consumption between phases can only increase free space.
        let room = self.window.free().saturating_sub(self.staged.len());
        for _ in 0..self.per_cycle.min(room) {
            match self.fetcher.next() {
                Some(e) => self.staged.push(e),
                None => break,
            }
        }
    }

    fn clock_apply(&mut self) {
        for e in self.staged.drain(..) {
            let admitted = self.window.admit(e.orig_col);
            debug_assert!(admitted, "staging was bounded by free space");
            self.delivered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condense::CondensedView;
    use sparch_sparse::gen;

    #[test]
    fn fetcher_interleaves_round_robin() {
        let cols = vec![
            vec![
                CondensedElement {
                    row: 0,
                    orig_col: 10,
                    value: 1.0,
                },
                CondensedElement {
                    row: 1,
                    orig_col: 11,
                    value: 2.0,
                },
            ],
            vec![CondensedElement {
                row: 0,
                orig_col: 20,
                value: 3.0,
            }],
            vec![
                CondensedElement {
                    row: 2,
                    orig_col: 30,
                    value: 4.0,
                },
                CondensedElement {
                    row: 3,
                    orig_col: 31,
                    value: 5.0,
                },
                CondensedElement {
                    row: 4,
                    orig_col: 32,
                    value: 6.0,
                },
            ],
        ];
        let order: Vec<u32> = ColumnFetcher::new(&cols).map(|e| e.orig_col).collect();
        assert_eq!(order, vec![10, 20, 30, 11, 31, 32]);
    }

    #[test]
    fn fetcher_covers_every_element_once() {
        let a = gen::rmat_graph500(128, 4, 3);
        let view = CondensedView::new(&a);
        let cols: Vec<Vec<CondensedElement>> = (0..view.num_cols())
            .map(|j| view.col(j).collect())
            .collect();
        let fetcher = ColumnFetcher::new(&cols);
        assert_eq!(fetcher.remaining(), a.nnz());
        let fetched: Vec<CondensedElement> = fetcher.collect();
        assert_eq!(fetched.len(), a.nnz());
    }

    #[test]
    fn fetcher_empty_and_all_empty_columns() {
        let none: Vec<Vec<CondensedElement>> = vec![];
        assert_eq!(ColumnFetcher::new(&none).count(), 0);
        let empties = vec![vec![], vec![]];
        assert_eq!(ColumnFetcher::new(&empties).count(), 0);
    }

    #[test]
    fn distances_track_the_window() {
        let mut d = DistanceListBuilder::new(8);
        for row in [5u32, 7, 5, 9] {
            assert!(d.admit(row));
        }
        assert_eq!(d.next_use_distance(5), 0);
        assert_eq!(d.next_use_distance(7), 1);
        assert_eq!(d.next_use_distance(9), 3);
        assert_eq!(d.next_use_distance(42), DistanceListBuilder::UNKNOWN);
        // Consume the head: 5's next use becomes position 2 (distance 1).
        assert_eq!(d.consume(), Some(5));
        assert_eq!(d.next_use_distance(5), 1);
        assert_eq!(d.next_use_distance(7), 0);
    }

    #[test]
    fn window_bounds_visibility() {
        let mut d = DistanceListBuilder::new(2);
        assert!(d.admit(1));
        assert!(d.admit(2));
        assert!(!d.admit(3), "window full: producer must stall");
        assert_eq!(d.len(), 2);
        d.consume();
        assert!(d.admit(3));
        assert_eq!(d.next_use_distance(1), DistanceListBuilder::UNKNOWN);
    }

    #[test]
    fn distances_agree_with_oracle_on_random_stream() {
        let a = gen::rmat_graph500(64, 4, 9);
        let stream: Vec<u32> = a.iter().map(|(_, c, _)| c).collect();
        let window = 16usize;
        let mut d = DistanceListBuilder::new(window);
        let mut admitted = 0usize;
        // Pre-fill the window.
        while admitted < stream.len().min(window) {
            d.admit(stream[admitted]);
            admitted += 1;
        }
        for t in 0..stream.len() {
            // Oracle: scan the visible slice.
            let visible = &stream[t..admitted];
            for &probe in visible.iter().take(4) {
                let oracle = visible.iter().position(|&r| r == probe).unwrap() as u64;
                assert_eq!(d.next_use_distance(probe), oracle, "t = {t}");
            }
            d.consume();
            if admitted < stream.len() {
                d.admit(stream[admitted]);
                admitted += 1;
            }
        }
    }

    #[test]
    fn pipeline_preserves_stream_order() {
        use sparch_engine::Clock;
        let a = gen::rmat_graph500(64, 4, 11);
        let view = CondensedView::new(&a);
        let cols: Vec<Vec<CondensedElement>> = (0..view.num_cols())
            .map(|j| view.col(j).collect())
            .collect();
        let expected: Vec<u32> = ColumnFetcher::new(&cols).map(|e| e.orig_col).collect();

        let mut pipe = FetchPipeline::new(&cols, 8, 3);
        let mut clock = Clock::new();
        let mut got = Vec::new();
        while !pipe.is_done() {
            clock.tick(&mut [&mut pipe]);
            // Consume at most one element per cycle, like a single
            // multiplier port; the window stays mostly full.
            if let Some(row) = pipe.consume() {
                got.push(row);
            }
            assert!(pipe.window().len() <= 8, "window capacity exceeded");
            assert!(clock.cycles() < 100_000, "pipeline failed to converge");
        }
        assert_eq!(got, expected);
        assert_eq!(pipe.delivered() as usize, expected.len());
    }

    #[test]
    fn pipeline_latches_at_the_edge() {
        use sparch_engine::Clocked;
        let cols = vec![vec![
            CondensedElement {
                row: 0,
                orig_col: 3,
                value: 1.0,
            },
            CondensedElement {
                row: 1,
                orig_col: 4,
                value: 2.0,
            },
        ]];
        let mut pipe = FetchPipeline::new(&cols, 4, 2);
        pipe.clock_update();
        assert_eq!(
            pipe.window().len(),
            0,
            "staged elements must not be visible"
        );
        pipe.clock_apply();
        assert_eq!(pipe.window().len(), 2);
        assert_eq!(pipe.window().next_use_distance(3), 0);
        assert_eq!(pipe.window().next_use_distance(4), 1);
    }
}
