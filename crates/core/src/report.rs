//! Simulation reports: everything the paper's evaluation section measures
//! for one SpGEMM task.

use serde::{Deserialize, Serialize};
use sparch_mem::{ActivityCounts, AreaBreakdown, EnergyBreakdown, TrafficCounter};
use sparch_sparse::Csr;

use crate::prefetch::PrefetchStats;

/// Timing and throughput summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfSummary {
    /// Total estimated cycles (1 GHz clock).
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Attained GFLOP/s, counting 2 FLOPs per scalar multiply (multiply +
    /// merge-add), the paper's convention.
    pub gflops: f64,
    /// Scalar multiplications (`M`).
    pub multiplies: u64,
    /// `2 * multiplies`.
    pub flops: u64,
    /// Non-zeros in the result.
    pub output_nnz: u64,
    /// Merge rounds executed.
    pub rounds: usize,
    /// Fraction of cycles the DRAM bus was busy (Table II's "Bandwidth
    /// Utilization").
    pub bandwidth_utilization: f64,
}

/// Complete output of one simulated SpGEMM task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The exact result matrix `C = A × B`.
    result: Csr,
    /// Per-category DRAM traffic.
    pub traffic: TrafficCounter,
    /// Timing and throughput.
    pub perf: PerfSummary,
    /// Row-prefetcher counters (hit rate etc.).
    pub prefetch: PrefetchStats,
    /// Raw activity counts (for energy accounting and ablations).
    pub activity: ActivityCounts,
    /// Energy attributed per component (joules).
    pub energy: EnergyBreakdown,
    /// Component areas for the simulated configuration (mm²).
    pub area: AreaBreakdown,
    /// Number of partial matrices before merging (condensed columns, or
    /// occupied CSC columns when condensing is off).
    pub partial_matrices: usize,
    /// The scheduler's estimated total node weight (Figure 8's metric).
    pub estimated_total_weight: u64,
}

impl SimReport {
    /// Creates a report (crate-internal; produced by the simulator).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        result: Csr,
        traffic: TrafficCounter,
        perf: PerfSummary,
        prefetch: PrefetchStats,
        activity: ActivityCounts,
        energy: EnergyBreakdown,
        area: AreaBreakdown,
        partial_matrices: usize,
        estimated_total_weight: u64,
    ) -> Self {
        SimReport {
            result,
            traffic,
            perf,
            prefetch,
            activity,
            energy,
            area,
            partial_matrices,
            estimated_total_weight,
        }
    }

    /// The exact result matrix.
    pub fn result(&self) -> &Csr {
        &self.result
    }

    /// Consumes the report, returning the result matrix.
    pub fn into_result(self) -> Csr {
        self.result
    }

    /// Total energy in joules.
    pub fn energy_total(&self) -> f64 {
        self.energy.total()
    }

    /// Energy per FLOP in nanojoules (Table III's metric).
    pub fn nj_per_flop(&self) -> f64 {
        if self.perf.flops == 0 {
            0.0
        } else {
            self.energy_total() * 1e9 / self.perf.flops as f64
        }
    }

    /// Average power in watts over the task.
    pub fn avg_power_w(&self) -> f64 {
        if self.perf.seconds == 0.0 {
            0.0
        } else {
            self.energy_total() / self.perf.seconds
        }
    }

    /// DRAM traffic in megabytes (the Figure 17/18 y-axis).
    pub fn dram_mb(&self) -> f64 {
        self.traffic.total_mb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_mem::TrafficCategory;

    fn sample() -> SimReport {
        let mut traffic = TrafficCounter::new();
        traffic.record(TrafficCategory::MatA, 1_000_000);
        SimReport::new(
            Csr::identity(4),
            traffic,
            PerfSummary {
                cycles: 1000,
                seconds: 1e-6,
                gflops: 10.0,
                multiplies: 5000,
                flops: 10_000,
                output_nnz: 4,
                rounds: 1,
                bandwidth_utilization: 0.5,
            },
            PrefetchStats::default(),
            ActivityCounts {
                multiplies: 5000,
                ..Default::default()
            },
            EnergyBreakdown {
                multiplier_array: 1e-7,
                hbm: 2.35e-5,
                ..Default::default()
            },
            AreaBreakdown::default(),
            12,
            365,
        )
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.energy_total() - 2.36e-5).abs() < 1e-9);
        assert!((r.nj_per_flop() - 2.36).abs() < 1e-3);
        assert!((r.avg_power_w() - 23.6).abs() < 0.1);
        assert!((r.dram_mb() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn result_accessors() {
        let r = sample();
        assert_eq!(r.result().nnz(), 4);
        assert_eq!(r.into_result().rows(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.perf, r.perf);
        assert_eq!(back.traffic, r.traffic);
        assert_eq!(back.result(), r.result());
    }
}
