//! The windowed-Bélády buffer simulation.
//!
//! Exact policy: when an eviction is needed, the victim is the resident
//! line whose owning row has the furthest next use *within the look-ahead
//! window*. Rows with no visible future use (next use beyond the window,
//! or none at all) are preferred victims, oldest-resident first — the
//! hardware cannot distinguish among them, and this matches Figure 9's
//! narrative of spilling the row "used in 7 time steps later" before one
//! used in 3.

use super::{PrefetchConfig, PrefetchStats, ReplacementPolicy};
use sparch_engine::{Clock, Clocked};
use sparch_sparse::{Csr, Index};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no future use".
const NEVER: u64 = u64::MAX;

#[derive(Debug)]
struct RowState {
    /// Which of the row's lines are resident.
    resident: Vec<bool>,
    /// Number of resident lines.
    count: usize,
    /// Absolute position of the row's next use (NEVER if none).
    next_use: u64,
    /// Monotone sequence number of first residency (FIFO among hidden).
    seq: u64,
    /// Monotone timestamp of the row's most recent access (LRU policy).
    last_use: u64,
    /// Whether the row currently sits in the visible (in-window) set.
    visible: bool,
}

/// Simulates the row buffer over a known access sequence (one access =
/// one left-matrix element consuming one full row of `B`).
///
/// Drive it with [`RowPrefetcher::access_next`] once per access; each call
/// returns the DRAM bytes charged for that access so the caller can
/// attribute traffic to merge rounds.
///
/// # Example
///
/// ```
/// use sparch_core::prefetch::{PrefetchConfig, RowPrefetcher};
/// use sparch_sparse::gen;
///
/// let b = gen::uniform_random(64, 64, 512, 3);
/// // Access row 5 twice: the second one hits.
/// let mut p = RowPrefetcher::new(&b, &PrefetchConfig::default(), vec![5, 5]);
/// let first = p.access_next();
/// assert!(first > 0);
/// assert_eq!(p.access_next(), 0);
/// assert!(p.stats().hit_rate() > 0.0);
/// ```
#[derive(Debug)]
pub struct RowPrefetcher<'a> {
    b: &'a Csr,
    cfg: PrefetchConfig,
    accesses: Vec<Index>,
    /// occurrences[row] = positions in `accesses`, ascending.
    occurrences: HashMap<Index, Vec<u32>>,
    /// Cursor into each row's occurrence list.
    cursors: HashMap<Index, usize>,
    /// Current access position.
    t: usize,
    /// Resident rows with a visible next use, keyed (next_use, row).
    visible: BTreeMap<(u64, Index), ()>,
    /// Resident rows whose next use is beyond the window, keyed (seq, row).
    hidden: BTreeMap<(u64, Index), ()>,
    /// Hidden rows become visible when `t` reaches their reveal position,
    /// keyed (reveal_time, row).
    reveals: BTreeMap<(u64, Index), ()>,
    /// Resident rows by recency, keyed (last_use, row) — LRU victim index.
    lru: BTreeMap<(u64, Index), ()>,
    rows: HashMap<Index, RowState>,
    lines_used: usize,
    next_seq: u64,
    stats: PrefetchStats,
    /// DRAM bytes of the access processed this cycle, staged by
    /// `clock_update` and latched by `clock_apply` (see the [`Clocked`]
    /// impl).
    staged_bytes: Option<u64>,
    /// DRAM bytes latched at the last clock edge.
    latched_bytes: Option<u64>,
}

impl<'a> RowPrefetcher<'a> {
    /// Prepares a simulation of `accesses` (row indices of `B`) under the
    /// given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any access is out of range for `b`.
    pub fn new(b: &'a Csr, cfg: &PrefetchConfig, accesses: Vec<Index>) -> Self {
        cfg.validate();
        let mut occurrences: HashMap<Index, Vec<u32>> = HashMap::new();
        for (pos, &row) in accesses.iter().enumerate() {
            assert!((row as usize) < b.rows(), "access to row {row} outside B");
            occurrences.entry(row).or_default().push(pos as u32);
        }
        RowPrefetcher {
            b,
            cfg: *cfg,
            accesses,
            occurrences,
            cursors: HashMap::new(),
            t: 0,
            visible: BTreeMap::new(),
            hidden: BTreeMap::new(),
            reveals: BTreeMap::new(),
            lru: BTreeMap::new(),
            rows: HashMap::new(),
            lines_used: 0,
            next_seq: 0,
            stats: PrefetchStats::default(),
            staged_bytes: None,
            latched_bytes: None,
        }
    }

    /// Accesses remaining in the sequence.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.t
    }

    /// Consumes the prefetcher, handing the access sequence's storage
    /// back so a caller-side scratch buffer can be recycled across tasks.
    pub fn into_accesses(self) -> Vec<Index> {
        self.accesses
    }

    /// Counters so far.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Runs the whole remaining sequence through the two-phase clock (one
    /// access per cycle), returning total DRAM bytes.
    pub fn run_to_end(&mut self) -> u64 {
        let mut clock = Clock::new();
        let mut bytes = 0;
        while self.remaining() > 0 || self.staged_bytes.is_some() {
            clock.tick(&mut [self]);
            bytes += self.take_cycle_bytes().unwrap_or(0);
        }
        bytes
    }

    /// DRAM bytes of the access that latched at the last clock edge, if
    /// one did. Consuming resets the latch.
    pub fn take_cycle_bytes(&mut self) -> Option<u64> {
        self.latched_bytes.take()
    }

    /// Absolute position of `row`'s next use strictly after `t`.
    fn next_use_after(&mut self, row: Index, t: usize) -> u64 {
        let occ = match self.occurrences.get(&row) {
            Some(o) => o,
            None => return NEVER,
        };
        let cursor = self.cursors.entry(row).or_insert(0);
        while *cursor < occ.len() && (occ[*cursor] as usize) <= t {
            *cursor += 1;
        }
        if *cursor < occ.len() {
            occ[*cursor] as u64
        } else {
            NEVER
        }
    }

    /// Moves rows whose next use has entered the look-ahead window from
    /// the hidden to the visible set.
    fn process_reveals(&mut self) {
        let t = self.t as u64;
        loop {
            let key = match self.reveals.first_key_value() {
                Some(((reveal, row), ())) if *reveal <= t => (*reveal, *row),
                _ => break,
            };
            self.reveals.remove(&key);
            let row = key.1;
            if let Some(state) = self.rows.get_mut(&row) {
                if state.count > 0 && !state.visible {
                    self.hidden.remove(&(state.seq, row));
                    self.visible.insert((state.next_use, row), ());
                    state.visible = true;
                }
            }
        }
    }

    /// Inserts row `row` (already in `self.rows`) into the visible or
    /// hidden set according to its next use and the look-ahead window.
    fn index_row(&mut self, row: Index) {
        let t = self.t as u64;
        let window = self.cfg.lookahead as u64;
        let state = self.rows.get_mut(&row).expect("row present");
        self.lru.insert((state.last_use, row), ());
        if state.next_use != NEVER && state.next_use - t <= window {
            self.visible.insert((state.next_use, row), ());
            state.visible = true;
        } else {
            self.hidden.insert((state.seq, row), ());
            state.visible = false;
            if state.next_use != NEVER {
                self.reveals.insert((state.next_use - window, row), ());
            }
        }
    }

    /// Removes row `row` from whichever set holds it.
    fn unindex_row(&mut self, row: Index) {
        if let Some(state) = self.rows.get(&row) {
            self.lru.remove(&(state.last_use, row));
            if state.visible {
                self.visible.remove(&(state.next_use, row));
            } else {
                self.hidden.remove(&(state.seq, row));
            }
        }
    }

    /// Evicts one line, preferring hidden rows (oldest first), then the
    /// visible row with the furthest next use. `protect` is the row being
    /// filled right now; it is only evicted as a last resort (a row larger
    /// than the whole buffer streams through).
    fn evict_one_line(&mut self, protect: Index) {
        let victim = match self.cfg.policy {
            ReplacementPolicy::Belady => self
                .hidden
                .keys()
                .find(|&&(_, row)| row != protect)
                .map(|&(_, row)| row)
                .or_else(|| {
                    self.visible
                        .keys()
                        .rev()
                        .find(|&&(_, row)| row != protect)
                        .map(|&(_, row)| row)
                })
                .unwrap_or(protect),
            ReplacementPolicy::Lru => self
                .lru
                .keys()
                .find(|&&(_, row)| row != protect)
                .map(|&(_, row)| row)
                .unwrap_or(protect),
        };
        let state = self.rows.get_mut(&victim).expect("victim is resident");
        // Spill the row's highest resident line (lines spill one at a
        // time; Figure 9 reloads only the missing ones later).
        let line = state
            .resident
            .iter()
            .rposition(|&r| r)
            .expect("victim has at least one resident line");
        state.resident[line] = false;
        state.count -= 1;
        self.lines_used -= 1;
        self.stats.evictions += 1;
        if state.count == 0 {
            self.unindex_row(victim);
            // Keep the protected row's (now empty) state: the caller is
            // mid-fill and still holds line bookkeeping for it.
            if victim != protect {
                self.rows.remove(&victim);
            }
        }
    }

    /// Number of elements stored in line `line` of a row with `nnz`
    /// elements (the last line may be partial).
    fn line_fill(&self, nnz: usize, line: usize) -> usize {
        let start = line * self.cfg.line_elems;
        (nnz - start).min(self.cfg.line_elems)
    }

    /// Processes the next access, returning the DRAM bytes it cost.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is exhausted.
    pub fn access_next(&mut self) -> u64 {
        assert!(self.t < self.accesses.len(), "access sequence exhausted");
        let row = self.accesses[self.t];
        let nnz = self.b.row_nnz(row as usize);
        self.stats.row_accesses += 1;
        self.stats.buffer_read_bytes += nnz as u64 * 12;

        if !self.cfg.enabled {
            // No buffer: stream the whole row from DRAM every time.
            let bytes = nnz as u64 * 12;
            self.stats.dram_bytes += bytes;
            let lines = nnz.div_ceil(self.cfg.line_elems);
            self.stats.line_requests += lines as u64;
            self.stats.line_misses += lines as u64;
            self.t += 1;
            return bytes;
        }

        self.process_reveals();

        let lines = nnz.div_ceil(self.cfg.line_elems);
        let mut dram = 0u64;
        if lines > 0 {
            // Take the row out of the victim index while operating on it.
            let existed = self.rows.contains_key(&row);
            if existed {
                self.unindex_row(row);
            } else {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.rows.insert(
                    row,
                    RowState {
                        resident: vec![false; lines],
                        count: 0,
                        next_use: NEVER,
                        seq,
                        last_use: self.t as u64,
                        visible: false,
                    },
                );
            }

            self.stats.line_requests += lines as u64;
            for line in 0..lines {
                let resident = self.rows.get(&row).expect("inserted above").resident[line];
                if resident {
                    self.stats.line_hits += 1;
                    continue;
                }
                self.stats.line_misses += 1;
                while self.lines_used >= self.cfg.lines {
                    self.evict_one_line(row);
                }
                let fill = self.line_fill(nnz, line) as u64 * 12;
                dram += fill;
                self.stats.dram_bytes += fill;
                self.stats.buffer_write_bytes += fill;
                let state = self.rows.get_mut(&row).expect("inserted above");
                if !state.resident[line] {
                    state.resident[line] = true;
                    state.count += 1;
                    self.lines_used += 1;
                }
            }

            // Re-index with the updated next use.
            let next = self.next_use_after(row, self.t);
            if let Some(state) = self.rows.get_mut(&row) {
                state.next_use = next;
                state.last_use = self.t as u64;
                if state.count > 0 {
                    self.index_row(row);
                } else {
                    self.rows.remove(&row);
                }
            }
        }

        self.t += 1;
        dram
    }
}

/// One buffer access per cycle: the access's bookkeeping happens in the
/// update phase; its DRAM-byte output signal latches at the clock edge,
/// so other components (fetchers, the traffic counter) observe it one
/// cycle later, flip-flop style.
impl Clocked for RowPrefetcher<'_> {
    fn clock_update(&mut self) {
        if self.t < self.accesses.len() {
            self.staged_bytes = Some(self.access_next());
        }
    }

    fn clock_apply(&mut self) {
        if let Some(bytes) = self.staged_bytes.take() {
            self.latched_bytes = Some(self.latched_bytes.unwrap_or(0) + bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::{gen, CsrBuilder};

    /// B with `rows` rows of exactly `nnz_per_row` elements each.
    fn uniform_b(rows: usize, nnz_per_row: usize) -> Csr {
        let mut b = CsrBuilder::new(rows, nnz_per_row + 1);
        for r in 0..rows {
            for c in 0..nnz_per_row {
                b.push(r as Index, c as Index, 1.0);
            }
        }
        b.finish()
    }

    fn cfg(lines: usize, line_elems: usize, lookahead: usize) -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            lines,
            line_elems,
            lookahead,
            fetchers: 16,
            policy: ReplacementPolicy::Belady,
        }
    }

    #[test]
    fn repeat_access_hits() {
        let b = uniform_b(4, 10);
        let mut p = RowPrefetcher::new(&b, &cfg(16, 16, 100), vec![0, 0, 0]);
        assert_eq!(p.access_next(), 120); // 10 elements x 12 B
        assert_eq!(p.access_next(), 0);
        assert_eq!(p.access_next(), 0);
        assert_eq!(p.stats().line_hits, 2);
        assert_eq!(p.stats().line_misses, 1);
    }

    #[test]
    fn belady_keeps_the_sooner_reused_row() {
        // Buffer of 2 lines, rows of 1 line each. Access 0,1,2 then 1:
        // Bélády evicts row 0 (never used again), keeping row 1.
        let b = uniform_b(3, 4);
        let mut p = RowPrefetcher::new(&b, &cfg(2, 4, 100), vec![0, 1, 2, 1]);
        p.access_next(); // 0: miss
        p.access_next(); // 1: miss
        p.access_next(); // 2: miss, evicts 0 (no future use)
        let cost = p.access_next(); // 1 again: must hit
        assert_eq!(cost, 0, "Bélády must keep row 1, the one reused sooner");
        assert_eq!(p.stats().line_misses, 3);
        assert_eq!(p.stats().line_hits, 1);
    }

    #[test]
    fn lru_like_sequence_where_belady_wins() {
        // 0 1 2 0 1 2... with capacity 2: LRU hits 0%, Bélády keeps one
        // row stable and hits 1 in 3.
        let b = uniform_b(3, 4);
        let seq: Vec<Index> = (0..30).map(|i| (i % 3) as Index).collect();
        let mut p = RowPrefetcher::new(&b, &cfg(2, 4, 100), seq);
        p.run_to_end();
        assert!(
            p.stats().hit_rate() > 0.30,
            "Bélády should beat LRU's 0 %: {}",
            p.stats().hit_rate()
        );
    }

    #[test]
    fn short_lookahead_degrades_hit_rate() {
        // A long strided pattern where reuse distance exceeds a short
        // window but fits a long one.
        let b = uniform_b(64, 4);
        let mut seq = Vec::new();
        for rep in 0..8 {
            for r in 0..48 {
                seq.push(((r * 7 + rep) % 48) as Index);
            }
        }
        let small = {
            let mut p = RowPrefetcher::new(&b, &cfg(24, 4, 4), seq.clone());
            p.run_to_end();
            p.stats().hit_rate()
        };
        let large = {
            let mut p = RowPrefetcher::new(&b, &cfg(24, 4, 4096), seq);
            p.run_to_end();
            p.stats().hit_rate()
        };
        assert!(
            large >= small,
            "longer look-ahead cannot hurt the policy: {large} vs {small}"
        );
        assert!(
            large > small + 0.05,
            "expected a real gap: {large} vs {small}"
        );
    }

    #[test]
    fn partial_line_and_multi_line_rows() {
        // Row of 10 elements with 4-element lines: 3 lines, last holds 2.
        let b = uniform_b(2, 10);
        let mut p = RowPrefetcher::new(&b, &cfg(8, 4, 10), vec![0]);
        let bytes = p.access_next();
        assert_eq!(bytes, 120);
        assert_eq!(p.stats().line_misses, 3);
    }

    #[test]
    fn row_larger_than_buffer_streams_through() {
        let b = uniform_b(1, 100);
        let mut p = RowPrefetcher::new(&b, &cfg(2, 4, 10), vec![0, 0]);
        let first = p.access_next();
        assert_eq!(first, 1200);
        // Second access: only the 2 still-resident lines can hit.
        let second = p.access_next();
        assert!(second >= 1200 - 2 * 4 * 12, "most lines must refetch");
        assert!(p.stats().evictions > 0);
    }

    #[test]
    fn disabled_prefetcher_streams_every_row() {
        let b = uniform_b(4, 8);
        let mut off = cfg(1024, 48, 8192);
        off.enabled = false;
        let mut p = RowPrefetcher::new(&b, &off, vec![1, 1, 1, 1]);
        let total = p.run_to_end();
        assert_eq!(total, 4 * 8 * 12);
        assert_eq!(p.stats().line_hits, 0);
    }

    #[test]
    fn empty_rows_cost_nothing() {
        let mut bb = CsrBuilder::new(3, 3);
        bb.push(1, 1, 1.0);
        let b = bb.finish();
        let mut p = RowPrefetcher::new(&b, &cfg(4, 4, 10), vec![0, 2, 0]);
        assert_eq!(p.run_to_end(), 0);
        assert_eq!(p.stats().row_accesses, 3);
        assert_eq!(p.stats().line_requests, 0);
    }

    #[test]
    fn realistic_workload_hit_rate_in_paper_ballpark() {
        // Condensed-column-like access pattern over a power-law B: the
        // paper reports 62 % on its suite; we only require a healthy rate.
        let b = gen::rmat_graph500(512, 8, 11);
        let a = gen::rmat_graph500(512, 8, 12);
        let mut seq = Vec::new();
        for r in 0..a.rows() {
            let (cols, _) = a.row(r);
            seq.extend(cols.iter().copied());
        }
        let mut p = RowPrefetcher::new(&b, &PrefetchConfig::default(), seq);
        p.run_to_end();
        assert!(
            p.stats().hit_rate() > 0.35,
            "hit rate {} too low for a buffered power-law workload",
            p.stats().hit_rate()
        );
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::prefetch::ReplacementPolicy;
    use sparch_sparse::CsrBuilder;

    fn uniform_b(rows: usize, nnz_per_row: usize) -> Csr {
        let mut b = CsrBuilder::new(rows, nnz_per_row + 1);
        for r in 0..rows {
            for c in 0..nnz_per_row {
                b.push(r as Index, c as Index, 1.0);
            }
        }
        b.finish()
    }

    fn hit_rate(policy: ReplacementPolicy, b: &Csr, seq: &[Index], lines: usize) -> f64 {
        let cfg = PrefetchConfig {
            enabled: true,
            lines,
            line_elems: 4,
            lookahead: 4096,
            fetchers: 16,
            policy,
        };
        let mut p = RowPrefetcher::new(b, &cfg, seq.to_vec());
        p.run_to_end();
        p.stats().hit_rate()
    }

    #[test]
    fn lru_thrashes_on_cyclic_scan() {
        // The classic LRU pathology: cyclic scan one row larger than the
        // buffer hits 0%; Bélády keeps a stable subset.
        let b = uniform_b(5, 4);
        let seq: Vec<Index> = (0..60).map(|i| (i % 5) as Index).collect();
        let lru = hit_rate(ReplacementPolicy::Lru, &b, &seq, 4);
        let belady = hit_rate(ReplacementPolicy::Belady, &b, &seq, 4);
        assert_eq!(lru, 0.0, "LRU must thrash on a cyclic scan");
        assert!(
            belady > 0.5,
            "Bélády keeps most of the working set: {belady}"
        );
    }

    #[test]
    fn belady_never_loses_on_sampled_workloads() {
        for seed in 0..4u64 {
            let b = uniform_b(48, 4);
            let a = sparch_sparse::gen::rmat_graph500(48, 6, seed);
            let mut seq = Vec::new();
            for _ in 0..4 {
                for r in 0..a.rows() {
                    let (cols, _) = a.row(r);
                    seq.extend(cols.iter().copied());
                }
            }
            let lru = hit_rate(ReplacementPolicy::Lru, &b, &seq, 16);
            let belady = hit_rate(ReplacementPolicy::Belady, &b, &seq, 16);
            assert!(
                belady >= lru - 1e-9,
                "seed {seed}: Bélády {belady} below LRU {lru}"
            );
        }
    }

    #[test]
    fn lru_matches_belady_when_buffer_is_ample() {
        // With room for every row, policies are irrelevant.
        let b = uniform_b(8, 4);
        let seq: Vec<Index> = (0..64).map(|i| (i % 8) as Index).collect();
        let lru = hit_rate(ReplacementPolicy::Lru, &b, &seq, 64);
        let belady = hit_rate(ReplacementPolicy::Belady, &b, &seq, 64);
        assert_eq!(lru, belady);
        assert!(lru > 0.8);
    }
}
