//! The MatB row prefetcher (paper §II-D, Figure 9).
//!
//! Matrix condensing destroys the right operand's perfect reuse: one
//! condensed column touches many different rows of `B`. The prefetcher
//! restores most of it with an on-chip row buffer whose replacement policy
//! is *near-Bélády-optimal*: because the left matrix streams through a
//! look-ahead FIFO, the exact sequence of future row accesses is known up
//! to the FIFO depth, so "we can replace the line with the furthest next
//! use".
//!
//! The buffer is organized in lines (Table I: 1024 lines × 48 elements ×
//! 12 bytes); rows occupy `ceil(nnz/48)` lines, and spilling/refetching
//! happens **line by line** — Figure 9's example shows a partially
//! evicted row needing only its missing lines reloaded.
//!
//! [`RowPrefetcher`] simulates the policy exactly over a known access
//! sequence, with the look-ahead horizon enforced: rows whose next use is
//! beyond the look-ahead window are indistinguishable to the hardware and
//! are evicted first, oldest-resident first.

mod belady;

pub use belady::RowPrefetcher;

use serde::{Deserialize, Serialize};

/// Buffer replacement policy.
///
/// The paper's contribution is the look-ahead-driven Bélády policy; LRU is
/// provided as the conventional comparison point to quantify how much the
/// look-ahead FIFO actually buys (used by the `policy` design-space
/// sweep and the property test `belady_never_loses_to_lru`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Furthest next use within the look-ahead window (the paper's).
    Belady,
    /// Least recently used (no future knowledge).
    Lru,
}

/// Row-prefetcher geometry (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Whether the prefetcher (and its buffer) is present. When disabled,
    /// every access streams the full row from DRAM.
    pub enabled: bool,
    /// Number of buffer lines (1024).
    pub lines: usize,
    /// Elements per line (48; 12 bytes each).
    pub line_elems: usize,
    /// Look-ahead FIFO depth in left-matrix elements (8192): the horizon
    /// within which future row uses are visible to the replacement policy.
    pub lookahead: usize,
    /// Independent DRAM-channel fetchers (16) — used by the timing model
    /// to overlap fetch latency.
    pub fetchers: usize,
    /// Which replacement policy the buffer runs.
    pub policy: ReplacementPolicy,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            lines: 1024,
            line_elems: 48,
            lookahead: 8192,
            fetchers: 16,
            policy: ReplacementPolicy::Belady,
        }
    }
}

impl PrefetchConfig {
    /// Total buffer capacity in bytes (12 bytes per element).
    pub fn capacity_bytes(&self) -> u64 {
        self.lines as u64 * self.line_elems as u64 * 12
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized lines or line elements.
    pub fn validate(&self) {
        assert!(self.lines > 0, "buffer must have at least one line");
        assert!(self.line_elems > 0, "lines must hold at least one element");
        assert!(self.fetchers > 0, "need at least one data fetcher");
    }
}

/// Counters from a prefetcher simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Left-matrix elements processed (row-access requests).
    pub row_accesses: u64,
    /// Buffer lines needed across all accesses.
    pub line_requests: u64,
    /// Lines already resident when needed.
    pub line_hits: u64,
    /// Lines fetched from DRAM.
    pub line_misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Bytes fetched from DRAM for matrix B.
    pub dram_bytes: u64,
    /// Bytes the multipliers consumed from the buffer.
    pub buffer_read_bytes: u64,
    /// Bytes written into the buffer by fills.
    pub buffer_write_bytes: u64,
}

impl PrefetchStats {
    /// Line-level hit rate. The paper reports 62 % on its suite.
    pub fn hit_rate(&self) -> f64 {
        if self.line_requests == 0 {
            0.0
        } else {
            self.line_hits as f64 / self.line_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = PrefetchConfig::default();
        c.validate();
        assert_eq!(c.lines, 1024);
        assert_eq!(c.line_elems, 48);
        assert_eq!(c.lookahead, 8192);
        assert_eq!(c.fetchers, 16);
        assert_eq!(c.capacity_bytes(), 1024 * 48 * 12);
    }

    #[test]
    fn hit_rate_division() {
        let mut s = PrefetchStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.line_requests = 100;
        s.line_hits = 62;
        assert!((s.hit_rate() - 0.62).abs() < 1e-12);
    }
}
