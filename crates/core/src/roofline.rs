//! Roofline analysis (paper §III-B, Figure 15).
//!
//! The paper places SpArch on a roofline with operational intensity
//! 0.19 FLOP/byte (outer-product FLOPs over the two inputs plus the final
//! output), a computation roof of 32 GFLOP/s (16 multipliers + 16 adders
//! at 1 GHz), and a bandwidth roof of 128 GB/s. SpArch attains
//! 10.4 GFLOP/s — 2.3× below its roof — versus OuterSPACE's 2.5.

use serde::{Deserialize, Serialize};
use sparch_sparse::{algo, Csr};

/// A roofline model: compute ceiling plus bandwidth slope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak computation in GFLOP/s.
    pub compute_roof_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// One measured point placed on the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operational intensity in FLOP/byte.
    pub intensity: f64,
    /// Attained performance in GFLOP/s.
    pub attained_gflops: f64,
    /// The roof at this intensity.
    pub roof_gflops: f64,
}

impl Roofline {
    /// The paper's configuration: 32 GFLOP/s compute, 128 GB/s HBM.
    pub fn paper_default() -> Self {
        Roofline {
            compute_roof_gflops: 32.0,
            bandwidth_gbs: 128.0,
        }
    }

    /// The roof at a given operational intensity:
    /// `min(compute, intensity × bandwidth)`.
    pub fn roof_at(&self, intensity: f64) -> f64 {
        self.compute_roof_gflops.min(intensity * self.bandwidth_gbs)
    }

    /// Intensity at which the machine turns compute-bound.
    pub fn knee(&self) -> f64 {
        self.compute_roof_gflops / self.bandwidth_gbs
    }

    /// Places a measured run on the roofline.
    pub fn place(&self, intensity: f64, attained_gflops: f64) -> RooflinePoint {
        RooflinePoint {
            intensity,
            attained_gflops,
            roof_gflops: self.roof_at(intensity),
        }
    }
}

/// The paper's *theoretical* operational intensity of an outer-product
/// SpGEMM task: FLOPs divided by the bytes of both inputs plus the merged
/// final output (no partial-matrix traffic) — "calculated to be
/// 0.19 FLOPs/Byte" on the evaluation suite.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn theoretical_intensity(a: &Csr, b: &Csr) -> f64 {
    let flops = 2 * algo::multiply_flops(a, b);
    let out_elems = algo::product_nnz(a, b);
    let bytes = a.dram_bytes() + b.dram_bytes() + out_elems * 12;
    if bytes == 0 {
        0.0
    } else {
        flops as f64 / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn paper_roofline_shape() {
        let r = Roofline::paper_default();
        // Below the knee the roof is bandwidth-limited.
        assert!((r.roof_at(0.1) - 12.8).abs() < 1e-9);
        // The paper's 0.19 FLOP/byte point: 24.3 GFLOP/s roof.
        assert!((r.roof_at(0.19) - 24.32).abs() < 0.01);
        // Far right: compute roof.
        assert_eq!(r.roof_at(10.0), 32.0);
        assert!((r.knee() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn place_clamps_nothing_but_reports_roof() {
        let r = Roofline::paper_default();
        let p = r.place(0.19, 10.4);
        assert!(p.attained_gflops < p.roof_gflops);
        assert!(
            (p.roof_gflops / p.attained_gflops - 2.34) < 0.1,
            "paper: 2.3x below roof"
        );
    }

    #[test]
    fn sparse_tasks_sit_left_of_the_knee() {
        // Very sparse matrices are memory-bound: intensity below 0.25.
        let a = gen::rmat_graph500(1024, 8, 3);
        let oi = theoretical_intensity(&a, &a);
        assert!(
            oi > 0.01 && oi < Roofline::paper_default().knee() * 4.0,
            "oi = {oi}"
        );
    }

    #[test]
    fn intensity_of_empty_task_is_zero_safe() {
        let z = Csr::zero(5, 5);
        assert!(theoretical_intensity(&z, &z) >= 0.0);
    }
}
