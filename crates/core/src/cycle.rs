//! Cycle-accurate co-simulation of one multiply-and-merge round.
//!
//! The paper's evaluation infrastructure is a cycle-accurate simulator
//! (§III-A). The whole-task simulator in [`crate::simulator`] uses a
//! round-level cost model for speed; this module provides the detailed
//! counterpart for one round — the multiplier array feeding the merge
//! tree's leaf FIFOs *while* the tree merges, exactly the pipelining of
//! Figure 5/10 — and is used to validate the cost model (see
//! `tests/model_validation.rs` and the unit tests here).
//!
//! The merge tree itself is `sparch_engine`'s [`MergeTreeSim`], advanced
//! through the [`Clocked`] two-phase discipline; this module adds only the
//! multiplier array. Per cycle, in hardware order:
//!
//! 1. `clock_update`: the partial-matrix writer stages the root FIFO drain
//!    (merger width per cycle) and each tree layer's shared merger serves
//!    one node (round-robin),
//! 2. the multiplier array produces up to `multipliers` partial products,
//!    round-robin across the round's columns, pushing into leaf FIFOs
//!    with backpressure — products latch at the coming clock edge,
//! 3. `clock_apply`: the writer's staged batch commits to the output.
//!
//! The co-simulation is functionally exact: its output equals the
//! functional k-way merge ([`crate::pipeline::kway_merge_fold`]).

use crate::condense::CondensedElement;
use crate::config::SpArchConfig;
use serde::{Deserialize, Serialize};
use sparch_engine::{Clocked, MergeItem, MergeTreeConfig, MergeTreeSim};
use sparch_sparse::Csr;

/// Counters and output of one co-simulated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRoundReport {
    /// Total cycles from first multiply to last writer drain.
    pub cycles: u64,
    /// The merged (duplicate-folded) output stream.
    pub output: Vec<MergeItem>,
    /// Scalar multiplications performed.
    pub multiplies: u64,
    /// Cycles in which the multiplier array was stalled by full leaf
    /// FIFOs (backpressure from the tree).
    pub multiplier_stalls: u64,
    /// Cycles in which any layer's merger found no serviceable node.
    pub merger_idle: u64,
}

/// Per-column generator state: walks the column's elements and, within
/// each element, the corresponding row of B.
struct ColumnCursor<'a> {
    col: &'a [CondensedElement],
    b: &'a Csr,
    elem: usize,
    pos: usize,
}

impl ColumnCursor<'_> {
    fn next_product(&mut self) -> Option<MergeItem> {
        while self.elem < self.col.len() {
            let e = self.col[self.elem];
            let (cols, vals) = self.b.row(e.orig_col as usize);
            if self.pos < cols.len() {
                let item = MergeItem::new(e.row, cols[self.pos], e.value * vals[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            self.elem += 1;
            self.pos = 0;
        }
        None
    }

    fn exhausted(&self) -> bool {
        self.elem >= self.col.len()
            || (self.elem == self.col.len() - 1 && {
                let e = self.col[self.elem];
                self.pos >= self.b.row_nnz(e.orig_col as usize)
            })
    }
}

/// Co-simulates one round of multiplying `columns` against `b` and merging
/// through the tree described by `config`.
///
/// # Panics
///
/// Panics if more columns than the tree's leaf ports are supplied, or if
/// the simulation fails to converge (internal bug guard).
pub fn simulate_round(
    columns: &[Vec<CondensedElement>],
    b: &Csr,
    config: &SpArchConfig,
) -> CycleRoundReport {
    config.validate();
    let layers = config.tree_layers;
    let leaves = 1usize << layers;
    assert!(
        columns.len() <= leaves,
        "{} columns exceed the tree's {leaves} leaf ports",
        columns.len()
    );
    let width = config.merger_width;

    // Round FIFOs are sized to absorb one merger emission plus slack; the
    // co-simulation historically used twice the width (min 64).
    let mut sim = MergeTreeSim::new(MergeTreeConfig {
        layers,
        merger_width: width,
        merger_chunk: config.merger_chunk,
        fifo_capacity: (2 * width).max(64),
    });
    // Leaves beyond the column count are trivially finished.
    for leaf in columns.len()..leaves {
        sim.finish_leaf(leaf);
    }

    let mut cursors: Vec<ColumnCursor> = columns
        .iter()
        .map(|col| ColumnCursor {
            col,
            b,
            elem: 0,
            pos: 0,
        })
        .collect();
    let total_products: u64 = columns
        .iter()
        .flatten()
        .map(|e| b.row_nnz(e.orig_col as usize) as u64)
        .sum();

    let mut multiplies = 0u64;
    let mut multiplier_stalls = 0u64;
    let mut mult_rr = 0usize;
    let cycle_cap = 1000 + total_products * (layers as u64 + 3);

    loop {
        // Phase 1: writer stages the root drain, layer mergers run.
        sim.clock_update();
        assert!(
            sim.stats().cycles < cycle_cap.max(10_000),
            "cycle co-simulation failed to converge"
        );

        // Multiplier array fills leaf FIFOs, round-robin with
        // backpressure; the products latch at the coming clock edge.
        if !columns.is_empty() {
            let mut budget = config.multipliers;
            let mut blocked = 0usize;
            let mut probes = 0usize;
            while budget > 0 && probes < 2 * columns.len() {
                let k = mult_rr % columns.len();
                mult_rr += 1;
                probes += 1;
                if cursors[k].exhausted() {
                    continue;
                }
                if !sim.leaf_has_room(k) {
                    blocked += 1;
                    continue;
                }
                match cursors[k].next_product() {
                    Some(item) => {
                        sim.push_leaf(k, item).expect("room checked");
                        multiplies += 1;
                        budget -= 1;
                    }
                    None => {
                        sim.finish_leaf(k);
                    }
                }
            }
            if budget == config.multipliers && blocked > 0 {
                multiplier_stalls += 1;
            }
        }
        // Columns that ran dry this cycle finish their leaves.
        for (k, cursor) in cursors.iter().enumerate() {
            if cursor.exhausted() {
                sim.finish_leaf(k);
            }
        }

        // Phase 2: the clock edge commits the writer's staged batch.
        sim.clock_apply();

        if sim.is_done() {
            break;
        }
    }

    let merger_idle = sim.stats().stalls;
    let cycles = sim.stats().cycles;
    let (output, _) = sim.into_parts();
    CycleRoundReport {
        cycles,
        output,
        multiplies,
        multiplier_stalls,
        merger_idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condense::CondensedView;
    use crate::pipeline::kway_merge_fold;
    use sparch_sparse::{algo, gen};

    fn columns_of(a: &Csr) -> Vec<Vec<CondensedElement>> {
        let view = CondensedView::new(a);
        (0..view.num_cols())
            .map(|j| view.col(j).collect())
            .collect()
    }

    #[test]
    fn co_simulation_is_functionally_exact() {
        let a = gen::uniform_random(80, 80, 480, 4);
        let columns = columns_of(&a);
        assert!(columns.len() <= 64);
        let report = simulate_round(&columns, &a, &SpArchConfig::default());

        // Reference: functional k-way merge of the same streams.
        let streams: Vec<Vec<MergeItem>> = columns
            .iter()
            .map(|col| {
                let mut s = Vec::new();
                for e in col {
                    let (cols, vals) = a.row(e.orig_col as usize);
                    for (&c, &v) in cols.iter().zip(vals) {
                        s.push(MergeItem::new(e.row, c, e.value * v));
                    }
                }
                s
            })
            .collect();
        let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
        let (expected, _) = kway_merge_fold(&refs);
        assert_eq!(report.output.len(), expected.len());
        for (got, want) in report.output.iter().zip(&expected) {
            assert_eq!(got.coord, want.coord);
            assert!((got.value - want.value).abs() < 1e-12);
        }
        assert_eq!(report.multiplies, algo::multiply_flops(&a, &a));
    }

    #[test]
    fn matches_gustavson_end_to_end() {
        let a = gen::rmat_graph500(96, 4, 7);
        let columns = columns_of(&a);
        if columns.len() > 64 {
            return; // single-round co-sim only
        }
        let report = simulate_round(&columns, &a, &SpArchConfig::default());
        let mut builder = sparch_sparse::CsrBuilder::new(a.rows(), a.cols());
        for item in &report.output {
            builder.push(item.row(), item.col(), item.value);
        }
        assert!(builder.finish().approx_eq(&algo::gustavson(&a, &a), 1e-9));
    }

    #[test]
    fn throughput_bounded_by_multipliers_and_root() {
        let a = gen::uniform_random(120, 120, 960, 6);
        let columns = columns_of(&a);
        let config = SpArchConfig::default();
        let report = simulate_round(&columns, &a, &config);
        // Lower bound: can't finish faster than either the multiply
        // bound or the root-drain bound.
        let multiply_bound = report.multiplies / config.multipliers as u64;
        let root_bound = report.output.len() as u64 / config.merger_width as u64;
        assert!(report.cycles >= multiply_bound.max(root_bound));
        // Upper bound: pipelining means far less than the serial sum.
        let serial = report.multiplies + report.output.len() as u64;
        assert!(
            report.cycles < serial,
            "pipelined round ({}) must beat serial execution ({serial})",
            report.cycles
        );
    }

    #[test]
    fn cost_model_tracks_co_simulation() {
        use crate::pipeline::{CostParams, RoundCost};
        let a = gen::uniform_random(200, 200, 1600, 8);
        let columns = columns_of(&a);
        let config = SpArchConfig::default();
        let report = simulate_round(&columns, &a, &config);
        let params = CostParams {
            bytes_per_cycle: config.hbm.bytes_per_cycle(),
            dram_latency: config.hbm.access_latency,
            tree_layers: config.tree_layers,
            merger_width: config.merger_width,
            multipliers: config.multipliers,
            lookahead: config.prefetch.lookahead,
            buffer_lines: config.prefetch.lines,
            fetchers: config.prefetch.fetchers,
        };
        let cost = RoundCost {
            multiplies: report.multiplies,
            input_elements: report.multiplies,
            output_elements: report.output.len() as u64,
            dram_bytes: 0, // compute-side comparison
            ..Default::default()
        };
        let modelled = params.round_cycles(&cost) - params.startup_cycles(&cost);
        let ratio = report.cycles as f64 / modelled.max(1) as f64;
        assert!(
            (0.4..=3.0).contains(&ratio),
            "co-sim {} vs model {} (ratio {ratio:.2})",
            report.cycles,
            modelled
        );
    }

    #[test]
    fn empty_round() {
        let report = simulate_round(&[], &Csr::zero(4, 4), &SpArchConfig::default());
        assert!(report.output.is_empty());
        assert_eq!(report.multiplies, 0);
    }
}
