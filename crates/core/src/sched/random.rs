//! The random-order scheduler — the §III-C ablation baseline: "use a
//! random order to select initial columns and partially merged results to
//! merge".
//!
//! Pending nodes sit in a queue in shuffled order; each round consumes
//! `ways` nodes from the front and appends its result at a random
//! position, so partially merged results keep re-entering future merges
//! in no particular order — the behaviour whose expected cost the paper
//! derives in Equations 2–7.

use super::{MergePlan, PlanNode, PlanRound};

/// A tiny deterministic PRNG (xorshift64*), enough to shuffle
/// reproducibly without pulling `rand` into this crate.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random-order merge plan with the given seed.
pub fn random_plan(leaf_weights: &[u64], ways: usize, seed: u64) -> MergePlan {
    let n = leaf_weights.len();
    let mut plan = MergePlan {
        num_leaves: n,
        ways,
        rounds: Vec::new(),
        leaf_weights: leaf_weights.to_vec(),
    };
    if n <= 1 {
        return plan;
    }
    let mut rng = XorShift::new(seed);
    let mut pending: Vec<(PlanNode, u64)> = leaf_weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (PlanNode::Leaf(i), w))
        .collect();
    // Fisher–Yates shuffle.
    for i in (1..pending.len()).rev() {
        pending.swap(i, rng.below(i + 1));
    }
    while pending.len() > 1 {
        let take = ways.min(pending.len());
        let group: Vec<(PlanNode, u64)> = pending.drain(..take).collect();
        let children: Vec<PlanNode> = group.iter().map(|&(node, _)| node).collect();
        let weight: u64 = group.iter().map(|&(_, w)| w).sum();
        let round_id = plan.rounds.len();
        plan.rounds.push(PlanRound {
            children,
            estimated_weight: weight,
        });
        let pos = if pending.is_empty() {
            0
        } else {
            rng.below(pending.len() + 1)
        };
        pending.insert(pos, (PlanNode::Round(round_id), weight));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::sched::MergePlan as Plan;

    #[test]
    fn deterministic_per_seed() {
        let w = [5u64, 3, 8, 1, 9, 2, 7];
        assert_eq!(random_plan(&w, 3, 42), random_plan(&w, 3, 42));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let w: Vec<u64> = (1..=20).collect();
        let a = random_plan(&w, 2, 1);
        let b = random_plan(&w, 2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn valid_for_many_shapes() {
        for n in [2usize, 5, 17, 100] {
            let w: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
            for ways in [2usize, 4, 64] {
                random_plan(&w, ways, 7).validate();
            }
        }
    }

    #[test]
    fn random_is_no_better_than_huffman_on_average() {
        let w: Vec<u64> = (0..60).map(|i| (i * 13 + 3) % 50 + 1).collect();
        let h = Plan::build(SchedulerKind::Huffman, &w, 4).estimated_total_weight();
        let mut worse = 0;
        for seed in 0..10 {
            if random_plan(&w, 4, seed).estimated_total_weight() >= h {
                worse += 1;
            }
        }
        assert_eq!(worse, 10, "huffman must be a lower bound");
    }
}
