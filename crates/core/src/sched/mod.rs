//! Merge-order scheduling (paper §II-C, Figure 8).
//!
//! When the number of partial matrices (condensed columns) exceeds the
//! merge tree's 64 ways, merging takes multiple rounds and every
//! intermediate (partially merged) result round-trips through DRAM. "The
//! order of the merge matters: the earlier a matrix is merged, the more
//! rounds of DRAM read and write it needs." The total partial-result
//! traffic equals the sum of internal-node weights of the merge tree, so
//! the optimal order is a k-ary Huffman tree over the column sizes.
//!
//! A [`MergePlan`] is the scheduler-agnostic output: an ordered list of
//! rounds, each merging up to `ways` previously-unconsumed nodes (leaves
//! or earlier rounds' results) into a new node. The simulator executes the
//! plan; [`MergePlan::estimated_internal_weight`] predicts its traffic.

mod huffman;
mod random;
mod sequential;

pub use huffman::huffman_plan;
pub use random::random_plan;
pub use sequential::sequential_plan;

use crate::config::SchedulerKind;
use serde::{Deserialize, Serialize};

/// A node consumed by a merge round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlanNode {
    /// An initial partial matrix: condensed column `i` (multiplied on the
    /// fly; never stored to DRAM as a partial result).
    Leaf(usize),
    /// The output of round `r` (spilled to DRAM when produced, read back
    /// when consumed — unless it is the final round's output).
    Round(usize),
}

/// One merge round: the tree merges `children` into one result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanRound {
    /// The nodes merged in this round (2 ..= ways entries).
    pub children: Vec<PlanNode>,
    /// Estimated size (elements) of this round's output, by the paper's
    /// sum approximation ("the weight of a parent node is the sum of the
    /// children's weights").
    pub estimated_weight: u64,
}

/// A complete merge schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergePlan {
    /// Number of initial partial matrices.
    pub num_leaves: usize,
    /// Merger ways (64 for the default 6-layer tree).
    pub ways: usize,
    /// Rounds in execution order; the last round produces the final result.
    pub rounds: Vec<PlanRound>,
    /// Leaf weights the plan was built from.
    pub leaf_weights: Vec<u64>,
}

impl MergePlan {
    /// Builds a plan with the given scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `ways < 2`.
    pub fn build(kind: SchedulerKind, leaf_weights: &[u64], ways: usize) -> MergePlan {
        assert!(ways >= 2, "a merger needs at least 2 ways");
        match kind {
            SchedulerKind::Huffman => huffman_plan(leaf_weights, ways),
            SchedulerKind::Sequential => sequential_plan(leaf_weights, ways),
            SchedulerKind::Random(seed) => random_plan(leaf_weights, ways, seed),
        }
    }

    /// Sum of all internal-node weights **including the root** — the
    /// paper's proxy for partial-result DRAM traffic plus the final write
    /// ("The memory access amount of all partially merged results equals
    /// to the sum of all internal node weights").
    pub fn estimated_internal_weight(&self) -> u64 {
        self.rounds.iter().map(|r| r.estimated_weight).sum()
    }

    /// Figure 8's reported metric: leaves + internal nodes + root.
    pub fn estimated_total_weight(&self) -> u64 {
        self.leaf_weights.iter().sum::<u64>() + self.estimated_internal_weight()
    }

    /// Sum of internal weights excluding the final round — proportional to
    /// the spilled-partial traffic only (the root is the final result,
    /// written once as `C`).
    pub fn estimated_spill_weight(&self) -> u64 {
        self.estimated_internal_weight() - self.rounds.last().map_or(0, |r| r.estimated_weight)
    }

    /// Validates structural invariants: every node consumed exactly once,
    /// children precede their round, round sizes within `2..=ways` (the
    /// final round of a 1-leaf plan is allowed a single child), and the
    /// plan terminates in exactly one unconsumed node.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        if self.num_leaves <= 1 {
            assert!(self.rounds.is_empty(), "0/1 leaves need no merge rounds");
            return;
        }
        let mut consumed_leaves = vec![false; self.num_leaves];
        let mut consumed_rounds = vec![false; self.rounds.len()];
        for (i, round) in self.rounds.iter().enumerate() {
            assert!(
                round.children.len() >= 2 && round.children.len() <= self.ways,
                "round {i} merges {} nodes (ways = {})",
                round.children.len(),
                self.ways
            );
            for &child in &round.children {
                match child {
                    PlanNode::Leaf(l) => {
                        assert!(l < self.num_leaves, "round {i}: leaf {l} out of range");
                        assert!(!consumed_leaves[l], "leaf {l} consumed twice");
                        consumed_leaves[l] = true;
                    }
                    PlanNode::Round(r) => {
                        assert!(r < i, "round {i} consumes future round {r}");
                        assert!(!consumed_rounds[r], "round {r} consumed twice");
                        consumed_rounds[r] = true;
                    }
                }
            }
        }
        assert!(
            consumed_leaves.iter().all(|&c| c),
            "every leaf must be consumed"
        );
        let unconsumed = consumed_rounds.iter().filter(|&&c| !c).count();
        assert_eq!(
            unconsumed, 1,
            "exactly the final round must remain unconsumed"
        );
        assert!(
            !consumed_rounds[self.rounds.len() - 1],
            "the last round must be the root"
        );
    }
}

/// The paper's Formula 1: how many nodes the *first* Huffman round merges
/// so that the final round is always full:
/// `kinit = (num_cols - 2) mod (ways - 1) + 2`.
pub fn kinit(num_leaves: usize, ways: usize) -> usize {
    debug_assert!(num_leaves >= 2 && ways >= 2);
    (num_leaves - 2) % (ways - 1) + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 8: 12 columns with these sizes.
    pub(crate) const FIGURE8_WEIGHTS: [u64; 12] = [15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];

    #[test]
    fn kinit_formula() {
        // 12 leaves, 2-way: (12-2) % 1 + 2 = 2.
        assert_eq!(kinit(12, 2), 2);
        // 12 leaves, 4-way: (12-2) % 3 + 2 = 3 (Figure 8(c)'s first round
        // merges J, K, L — three nodes).
        assert_eq!(kinit(12, 4), 3);
        // 64 ways, 100 leaves: (98) % 63 + 2 = 37.
        assert_eq!(kinit(100, 64), 37);
        // Exactly `ways` leaves: one full round.
        assert_eq!(kinit(64, 64), 64);
    }

    #[test]
    fn figure8_totals() {
        // (b) 2-way Huffman: total weight of all nodes 354.
        let plan2 = MergePlan::build(SchedulerKind::Huffman, &FIGURE8_WEIGHTS, 2);
        plan2.validate();
        assert_eq!(plan2.estimated_total_weight(), 354);
        // (c) 4-way Huffman: 228.
        let plan4 = MergePlan::build(SchedulerKind::Huffman, &FIGURE8_WEIGHTS, 4);
        plan4.validate();
        assert_eq!(plan4.estimated_total_weight(), 228);
        // (a) 2-way sequential scheduler: 365.
        let seq = MergePlan::build(SchedulerKind::Sequential, &FIGURE8_WEIGHTS, 2);
        seq.validate();
        assert_eq!(seq.estimated_total_weight(), 365);
    }

    #[test]
    fn huffman_beats_or_ties_everything() {
        let weights: Vec<u64> = (0..50).map(|i| (i * 37 + 11) % 100 + 1).collect();
        for ways in [2usize, 4, 8, 64] {
            let h = MergePlan::build(SchedulerKind::Huffman, &weights, ways);
            let s = MergePlan::build(SchedulerKind::Sequential, &weights, ways);
            let r = MergePlan::build(SchedulerKind::Random(3), &weights, ways);
            h.validate();
            s.validate();
            r.validate();
            assert!(h.estimated_total_weight() <= s.estimated_total_weight());
            assert!(h.estimated_total_weight() <= r.estimated_total_weight());
        }
    }

    #[test]
    fn single_round_when_leaves_fit() {
        let weights = [5u64, 4, 3];
        for kind in [
            SchedulerKind::Huffman,
            SchedulerKind::Sequential,
            SchedulerKind::Random(1),
        ] {
            let plan = MergePlan::build(kind, &weights, 64);
            plan.validate();
            assert_eq!(plan.rounds.len(), 1);
            assert_eq!(plan.rounds[0].children.len(), 3);
            assert_eq!(plan.estimated_internal_weight(), 12);
        }
    }

    #[test]
    fn degenerate_plans() {
        for kind in [
            SchedulerKind::Huffman,
            SchedulerKind::Sequential,
            SchedulerKind::Random(0),
        ] {
            let empty = MergePlan::build(kind, &[], 4);
            empty.validate();
            assert!(empty.rounds.is_empty());
            let one = MergePlan::build(kind, &[42], 4);
            one.validate();
            assert!(one.rounds.is_empty());
        }
    }

    #[test]
    fn spill_weight_excludes_root() {
        let plan = MergePlan::build(SchedulerKind::Huffman, &FIGURE8_WEIGHTS, 4);
        let root = plan.rounds.last().unwrap().estimated_weight;
        assert_eq!(root, 84);
        assert_eq!(
            plan.estimated_spill_weight(),
            plan.estimated_internal_weight() - 84
        );
    }

    #[test]
    fn huffman_matches_bruteforce_optimum_small() {
        // Exhaustive check on tiny inputs: Huffman total = minimum over
        // all possible merge orders (2-way).
        fn brute(weights: &[u64]) -> u64 {
            if weights.len() <= 1 {
                return 0;
            }
            let mut best = u64::MAX;
            for i in 0..weights.len() {
                for j in (i + 1)..weights.len() {
                    let (a, b) = (weights[i], weights[j]);
                    let mut rest: Vec<u64> = weights
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != i && k != j)
                        .map(|(_, &w)| w)
                        .collect();
                    rest.push(a + b);
                    best = best.min(a + b + brute(&rest));
                }
            }
            best
        }
        for weights in [
            vec![1u64, 2, 3, 4],
            vec![5, 5, 5],
            vec![1, 10, 100, 1000, 7],
        ] {
            let plan = MergePlan::build(SchedulerKind::Huffman, &weights, 2);
            let optimal = brute(&weights);
            assert_eq!(
                plan.estimated_internal_weight(),
                optimal,
                "weights {weights:?}"
            );
        }
    }
}
