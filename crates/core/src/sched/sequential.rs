//! The sequential (non-Huffman) scheduler — Figure 8(a)'s comparison
//! point.
//!
//! A balanced pairwise reduction: each level groups the pending node list
//! into `ways`-sized merges **from the small end** (the tail of the list,
//! which Figure 8 draws in descending weight order), and any leftover
//! nodes at the large end pass through to the next level unmerged (they
//! stay in DRAM without being rewritten). On the Figure 8 example this
//! reproduces the paper's total of 365.

use super::{MergePlan, PlanNode, PlanRound};

/// Builds the level-by-level sequential merge plan.
pub fn sequential_plan(leaf_weights: &[u64], ways: usize) -> MergePlan {
    let n = leaf_weights.len();
    let mut plan = MergePlan {
        num_leaves: n,
        ways,
        rounds: Vec::new(),
        leaf_weights: leaf_weights.to_vec(),
    };
    if n <= 1 {
        return plan;
    }
    // Pending nodes in the order given (Figure 8 lists columns largest
    // first; the simulator passes condensed-column order).
    let mut pending: Vec<(PlanNode, u64)> = leaf_weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (PlanNode::Leaf(i), w))
        .collect();

    while pending.len() > 1 {
        if pending.len() <= ways {
            // Final level: everything fits one merge.
            let children: Vec<PlanNode> = pending.iter().map(|&(node, _)| node).collect();
            let weight: u64 = pending.iter().map(|&(_, w)| w).sum();
            plan.rounds.push(PlanRound {
                children,
                estimated_weight: weight,
            });
            break;
        }
        let mut next_level: Vec<(PlanNode, u64)> = Vec::new();
        // Leftover at the large end passes through unmerged; full groups
        // of `ways` form from the small (tail) end.
        let leftover = pending.len() % ways;
        next_level.extend(pending[..leftover].iter().copied());
        for group in pending[leftover..].chunks(ways) {
            let children: Vec<PlanNode> = group.iter().map(|&(node, _)| node).collect();
            let weight: u64 = group.iter().map(|&(_, w)| w).sum();
            let round_id = plan.rounds.len();
            plan.rounds.push(PlanRound {
                children,
                estimated_weight: weight,
            });
            next_level.push((PlanNode::Round(round_id), weight));
        }
        pending = next_level;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8a_total_is_365() {
        let weights = [15u64, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];
        let plan = sequential_plan(&weights, 2);
        plan.validate();
        assert_eq!(plan.estimated_total_weight(), 365);
    }

    #[test]
    fn figure8a_level_structure() {
        // Level 1 merges adjacent pairs: 30, 25, 16, 5, 4, 4 (sum 84).
        // Level 2: 55, 21, 8. Level 3: leftover 55, merge (21, 8) = 29.
        // Level 4: (55, 29) = 84.
        let weights = [15u64, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];
        let plan = sequential_plan(&weights, 2);
        let round_weights: Vec<u64> = plan.rounds.iter().map(|r| r.estimated_weight).collect();
        assert_eq!(round_weights, vec![30, 25, 16, 5, 4, 4, 55, 21, 8, 29, 84]);
    }

    #[test]
    fn leftover_passes_through_unmerged() {
        // 5 leaves, 2-way: leftover of 1 at the front each odd level.
        let plan = sequential_plan(&[10, 1, 1, 1, 1], 2);
        plan.validate();
        // Level 1: leftover [10], merges (1,1)=2, (1,1)=2.
        // Level 2: leftover [10], merge (2,2)=4. Level 3: (10,4)=14.
        let round_weights: Vec<u64> = plan.rounds.iter().map(|r| r.estimated_weight).collect();
        assert_eq!(round_weights, vec![2, 2, 4, 14]);
    }

    #[test]
    fn wide_merger_single_round() {
        let plan = sequential_plan(&[1, 2, 3, 4, 5], 8);
        plan.validate();
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(plan.estimated_internal_weight(), 15);
    }
}
