//! The k-ary Huffman scheduler (paper §II-C).
//!
//! "In our real implementation, the Huffman tree is built on the fly with
//! a priority queue ... we firstly add the weights of leaf nodes to the
//! queue and sort them. For a m-way merger, in each iteration, the first m
//! partial matrices are merged, and the weight of the merged matrix is
//! added to the queue." The first round merges `kinit` nodes (Formula 1)
//! so the root is always full.

use super::{kinit, MergePlan, PlanNode, PlanRound};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Builds the k-ary Huffman merge plan for the given leaf weights.
pub fn huffman_plan(leaf_weights: &[u64], ways: usize) -> MergePlan {
    let n = leaf_weights.len();
    let mut plan = MergePlan {
        num_leaves: n,
        ways,
        rounds: Vec::new(),
        leaf_weights: leaf_weights.to_vec(),
    };
    if n <= 1 {
        return plan;
    }
    // Min-heap of (weight, node). Ties resolve toward leaves with lower
    // index for determinism.
    let mut heap: BinaryHeap<Reverse<(u64, usize, PlanNode)>> = leaf_weights
        .iter()
        .enumerate()
        .map(|(i, &w)| Reverse((w, i, PlanNode::Leaf(i))))
        .collect();

    let mut first = true;
    while heap.len() > 1 {
        let take = if first {
            kinit(n, ways)
        } else {
            ways.min(heap.len())
        };
        first = false;
        let mut children = Vec::with_capacity(take);
        let mut weight = 0u64;
        for _ in 0..take {
            let Reverse((w, _, node)) = heap.pop().expect("heap size checked");
            weight += w;
            children.push(node);
        }
        let round_id = plan.rounds.len();
        plan.rounds.push(PlanRound {
            children,
            estimated_weight: weight,
        });
        heap.push(Reverse((weight, n + round_id, PlanNode::Round(round_id))));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_huffman_structure() {
        // Textbook: weights 1,1,2,3,5 with 2-way merging.
        let plan = huffman_plan(&[1, 1, 2, 3, 5], 2);
        plan.validate();
        // Internal nodes: 2 (1+1), 4 (2+2), 7 (3+4), 12 (5+7) = 25.
        assert_eq!(plan.estimated_internal_weight(), 25);
        assert_eq!(plan.rounds.len(), 4);
    }

    #[test]
    fn figure8c_round_structure() {
        // 4-way on the Figure 8 weights: rounds merge {2,2,2}→6,
        // {2,2,3,6}→13, {7,9,12,13}→41, {13,15,15,41}→84.
        let weights = [15u64, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];
        let plan = huffman_plan(&weights, 4);
        plan.validate();
        let round_weights: Vec<u64> = plan.rounds.iter().map(|r| r.estimated_weight).collect();
        assert_eq!(round_weights, vec![6, 13, 41, 84]);
        assert_eq!(plan.rounds[0].children.len(), 3, "kinit = 3");
        assert!(plan.rounds[1..].iter().all(|r| r.children.len() == 4));
    }

    #[test]
    fn root_is_always_full() {
        // Formula 1's purpose: whatever the leaf count, the last round
        // merges exactly `ways` nodes.
        for n in 2..40 {
            let weights: Vec<u64> = (0..n).map(|i| i as u64 + 1).collect();
            for ways in [2usize, 3, 4, 7, 64] {
                let plan = huffman_plan(&weights, ways);
                plan.validate();
                let last = plan.rounds.last().unwrap();
                assert_eq!(last.children.len(), ways.min(n), "n = {n}, ways = {ways}");
            }
        }
    }

    #[test]
    fn large_columns_merge_late() {
        // "The long columns can be scheduled near the root node in the
        // Huffman Tree, so they will not generate partially merged
        // results" (§III-C). The heaviest leaf must appear in the final
        // round for these weights.
        let weights = [1000u64, 1, 1, 1, 1, 1, 1, 1];
        let plan = huffman_plan(&weights, 4);
        let last = plan.rounds.last().unwrap();
        assert!(
            last.children.contains(&PlanNode::Leaf(0)),
            "heaviest leaf should merge in the final round: {last:?}"
        );
    }

    #[test]
    fn deterministic_under_ties() {
        let weights = [2u64; 10];
        let a = huffman_plan(&weights, 4);
        let b = huffman_plan(&weights, 4);
        assert_eq!(a, b);
    }
}
