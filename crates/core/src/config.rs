//! SpArch configuration (paper Table I) and ablation switches.

use crate::prefetch::PrefetchConfig;
use serde::{Deserialize, Serialize};
use sparch_mem::{EnergyModel, HbmConfig};

/// Which merge-order scheduler drives the rounds (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// k-ary Huffman tree over estimated column sizes — the paper's
    /// scheduler, near-optimal for total partial-result traffic.
    Huffman,
    /// Balanced pairwise reduction in the given order (Figure 8(a)'s
    /// "sequential scheduler" comparison point).
    Sequential,
    /// Uniformly random merge order (the §III-C ablation baseline:
    /// "use a random order to select initial columns and partially merged
    /// results"). The seed makes runs reproducible.
    Random(u64),
}

/// Full architectural configuration. Defaults reproduce Table I:
///
/// | unit | setting |
/// |---|---|
/// | array merger | 16×16 hierarchical (4×4 top + 4×4 low), 1 GHz |
/// | merge tree | 6 layers → 64-way merge |
/// | multipliers | 2 × 8 double-precision |
/// | MatA column fetcher | 8192-element look-ahead, 64 column fetchers |
/// | MatB row prefetcher | 1024 lines × 48 elements × 12 B, 16 fetchers |
/// | partial matrix writer | 1024-element FIFO |
/// | main memory | 16 × 64-bit HBM channels, 8 GB/s each |
///
/// # Example
///
/// ```
/// use sparch_core::SpArchConfig;
///
/// let config = SpArchConfig::default();
/// assert_eq!(config.merge_ways(), 64);
/// let ablation = SpArchConfig::default().without_condensing();
/// assert!(!ablation.condensing);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpArchConfig {
    /// Merge-tree layers; the tree merges `2^tree_layers` streams at once.
    pub tree_layers: usize,
    /// Elements per cycle through each layer's merger.
    pub merger_width: usize,
    /// Low-level chunk size of the hierarchical merger.
    pub merger_chunk: usize,
    /// Parallel double-precision multipliers.
    pub multipliers: usize,
    /// Partial-matrix writer FIFO capacity in elements.
    pub writer_fifo: usize,
    /// Row-prefetcher geometry and enable flag.
    pub prefetch: PrefetchConfig,
    /// Main-memory model.
    pub hbm: HbmConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Matrix condensing enabled (ablation switch; §II-B).
    pub condensing: bool,
    /// Merge-order scheduler (ablation switch; §II-C).
    pub scheduler: SchedulerKind,
}

impl Default for SpArchConfig {
    fn default() -> Self {
        SpArchConfig {
            tree_layers: 6,
            merger_width: 16,
            merger_chunk: 4,
            multipliers: 16,
            writer_fifo: 1024,
            prefetch: PrefetchConfig::default(),
            hbm: HbmConfig::default(),
            energy: EnergyModel::default(),
            condensing: true,
            scheduler: SchedulerKind::Huffman,
        }
    }
}

impl SpArchConfig {
    /// Number of streams merged per round: `2^tree_layers` (64 for the
    /// default 6-layer tree).
    pub fn merge_ways(&self) -> usize {
        1 << self.tree_layers
    }

    /// Peak floating-point throughput in GFLOP/s at 1 GHz: every multiply
    /// may be paired with one merge-add ("The peak multiplication
    /// performance is 16 GFlops/s, and the overall peak performance
    /// (multiplication+addition) is 32 GFlops/s", §III-B).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.multipliers as f64 * self.hbm.clock_hz / 1e9
    }

    /// Returns the configuration with condensing disabled (the left matrix
    /// is processed by original CSC columns).
    pub fn without_condensing(mut self) -> Self {
        self.condensing = false;
        self
    }

    /// Returns the configuration with the given scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns the configuration with the prefetcher disabled (every right
    /// -matrix row access goes to DRAM).
    pub fn without_prefetcher(mut self) -> Self {
        self.prefetch.enabled = false;
        self
    }

    /// Returns the configuration with `layers` merge-tree layers.
    pub fn with_tree_layers(mut self, layers: usize) -> Self {
        self.tree_layers = layers;
        self
    }

    /// Returns the configuration with an `n`-wide merger.
    pub fn with_merger_width(mut self, n: usize) -> Self {
        self.merger_width = n;
        // Keep the hierarchical split legal: largest chunk dividing n,
        // close to n^(1/3) rounded to a divisor.
        self.merger_chunk = best_chunk(n);
        self
    }

    /// The ablation ladder of Figure 16, in order: pipelined-only,
    /// +condensing, +Huffman scheduler, +prefetcher (= default).
    pub fn ablation_ladder() -> [(&'static str, SpArchConfig); 4] {
        [
            (
                "pipelined multiply-merge only",
                SpArchConfig::default()
                    .without_condensing()
                    .with_scheduler(SchedulerKind::Random(17))
                    .without_prefetcher(),
            ),
            (
                "+ matrix condensing",
                SpArchConfig::default()
                    .with_scheduler(SchedulerKind::Random(17))
                    .without_prefetcher(),
            ),
            (
                "+ huffman scheduler",
                SpArchConfig::default().without_prefetcher(),
            ),
            ("+ row prefetcher (full SpArch)", SpArchConfig::default()),
        ]
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is degenerate (zero sizes, chunk not
    /// dividing the merger width).
    pub fn validate(&self) {
        assert!(self.tree_layers > 0, "tree must have at least one layer");
        assert!(self.merger_width > 0, "merger width must be positive");
        assert!(
            self.merger_width.is_multiple_of(self.merger_chunk),
            "merger chunk must divide merger width"
        );
        assert!(self.multipliers > 0, "need at least one multiplier");
        assert!(self.writer_fifo > 0, "writer FIFO must be positive");
        self.prefetch.validate();
    }
}

/// Largest divisor of `n` not exceeding `ceil(n^(1/2))` — a reasonable
/// low-level chunk for an `n`-wide hierarchical merger (4 for n = 16, as
/// in Table I).
fn best_chunk(n: usize) -> usize {
    let target = (n as f64).sqrt().ceil() as usize;
    (1..=target)
        .rev()
        .find(|&d| n.is_multiple_of(d))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = SpArchConfig::default();
        c.validate();
        assert_eq!(c.tree_layers, 6);
        assert_eq!(c.merge_ways(), 64);
        assert_eq!(c.merger_width, 16);
        assert_eq!(c.merger_chunk, 4);
        assert_eq!(c.multipliers, 16);
        assert_eq!(c.prefetch.lines, 1024);
        assert_eq!(c.prefetch.line_elems, 48);
        assert_eq!(c.prefetch.lookahead, 8192);
        assert!((c.peak_gflops() - 32.0).abs() < 1e-9);
        assert!(c.condensing);
        assert_eq!(c.scheduler, SchedulerKind::Huffman);
    }

    #[test]
    fn ablation_ladder_is_monotone_in_features() {
        let ladder = SpArchConfig::ablation_ladder();
        assert!(!ladder[0].1.condensing);
        assert!(ladder[1].1.condensing);
        assert!(matches!(ladder[1].1.scheduler, SchedulerKind::Random(_)));
        assert_eq!(ladder[2].1.scheduler, SchedulerKind::Huffman);
        assert!(!ladder[2].1.prefetch.enabled);
        assert!(ladder[3].1.prefetch.enabled);
        for (_, c) in &ladder {
            c.validate();
        }
    }

    #[test]
    fn merger_width_adjusts_chunk() {
        assert_eq!(
            SpArchConfig::default().with_merger_width(16).merger_chunk,
            4
        );
        assert_eq!(SpArchConfig::default().with_merger_width(8).merger_chunk, 2);
        assert_eq!(SpArchConfig::default().with_merger_width(1).merger_chunk, 1);
        for n in [1usize, 2, 4, 8, 16, 12] {
            SpArchConfig::default().with_merger_width(n).validate();
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_chunk_rejected() {
        let c = SpArchConfig {
            merger_chunk: 5,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = SpArchConfig::default().with_tree_layers(4);
        let json = serde_json::to_string(&c).unwrap();
        let back: SpArchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
