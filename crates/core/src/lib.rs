//! The SpArch accelerator model — the primary contribution of
//! *SpArch: Efficient Architecture for Sparse Matrix Multiplication*
//! (HPCA 2020).
//!
//! SpArch computes `C = A × B` for sparse matrices with an outer-product
//! dataflow whose partial products are merged **on chip** by a streaming
//! comparator-array merge tree. Four techniques make that viable:
//!
//! 1. **Pipelined multiply and merge** ([`pipeline`]) — partial matrices
//!    stream from the multipliers straight into the merge tree,
//! 2. **Matrix condensing** ([`condense`]) — the left operand's non-zeros
//!    are packed left, collapsing ~100 k original columns into a few
//!    hundred condensed columns = partial matrices,
//! 3. **Huffman-tree scheduling** ([`sched`]) — when the condensed columns
//!    still exceed the 64-way tree, merge order is chosen by a k-ary
//!    Huffman tree to minimize DRAM round-trips of partial results,
//! 4. **Row prefetching** ([`prefetch`]) — the right operand's rows are
//!    buffered with a near-Bélády replacement policy driven by a
//!    look-ahead FIFO, recovering the input reuse condensing destroyed.
//!
//! [`SpArchSim`] assembles these into a whole-task simulator that produces
//! the *exact* result matrix (validated against software SpGEMM), exact
//! per-category DRAM traffic, a cycle estimate from per-round
//! compute/memory bounds, and energy/area breakdowns.
//!
//! # Example
//!
//! ```
//! use sparch_core::{SpArchConfig, SpArchSim};
//! use sparch_sparse::{algo, gen};
//!
//! let a = gen::uniform_random(200, 200, 1200, 1);
//! let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
//! assert!(report.result().approx_eq(&algo::gustavson(&a, &a), 1e-9));
//! assert!(report.perf.gflops > 0.0);
//! ```

pub mod condense;
pub mod config;
pub mod cycle;
pub mod fetch;
pub mod pipeline;
pub mod prefetch;
pub mod report;
pub mod roofline;
pub mod sched;
pub mod scratch;
pub mod simulator;

pub use condense::{CondensedElement, CondensedView};
pub use config::{SchedulerKind, SpArchConfig};
pub use cycle::{simulate_round, CycleRoundReport};
pub use fetch::{ColumnFetcher, DistanceListBuilder, FetchPipeline};
pub use pipeline::{kway_merge_fold, kway_merge_fold_into, CostParams, RoundCost};
pub use prefetch::{PrefetchConfig, PrefetchStats, ReplacementPolicy, RowPrefetcher};
pub use report::{PerfSummary, SimReport};
pub use roofline::{Roofline, RooflinePoint};
pub use sched::{MergePlan, PlanNode, PlanRound};
pub use scratch::SimScratch;
pub use simulator::{ExecTotals, SimPlan, SpArchSim};
