//! Round execution: the multiply → merge-tree → adder/zero-eliminator →
//! writer pipeline (paper §II-E, Figure 10), and its per-round cost model.
//!
//! The functional half ([`kway_merge_fold`]) produces bit-exact merged
//! streams (validated against the cycle-level `sparch_engine::MergeTree`
//! in integration tests). The timing half ([`RoundCost`]) reproduces the
//! simulator's per-round cycle estimate: a round is bound either by DRAM
//! bandwidth or by the merge tree's root throughput, plus startup
//! latencies (DRAM access, tree pipeline fill, look-ahead FIFO fill).

use serde::{Deserialize, Serialize};
use sparch_engine::MergeItem;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pending entry of the k-way merge heap: `(coordinate, stream
/// index, position within stream)`. Tuple order makes ties resolve by
/// stream index then position — the same order a left-to-right merge
/// tree folds duplicates in.
pub(crate) type MergeHeapEntry = Reverse<(u64, usize, usize)>;

/// The allocation-reusing core of the k-way merge: streams are looked up
/// by index through `stream` (so callers can merge out of heterogeneous
/// storage without building a slice of references), output is appended to
/// `out` (cleared first), and the heap's backing storage is borrowed from
/// `heap_buf` and returned to it — after warm-up, a call with
/// sufficiently-sized buffers performs no heap allocation.
pub(crate) fn kway_merge_fold_with<'s, L>(
    num_streams: usize,
    stream: L,
    out: &mut Vec<MergeItem>,
    heap_buf: &mut Vec<MergeHeapEntry>,
) -> u64
where
    L: Fn(usize) -> &'s [MergeItem],
{
    out.clear();
    heap_buf.clear();
    let mut total = 0usize;
    for k in 0..num_streams {
        let s = stream(k);
        debug_assert!(
            sparch_engine::item::is_sorted(s),
            "input {k} is not sorted by coordinate"
        );
        total += s.len();
        if !s.is_empty() {
            heap_buf.push(Reverse((s[0].coord, k, 0)));
        }
    }
    out.reserve(total);
    // `BinaryHeap::from` heapifies the vector in place (no allocation),
    // and `into_vec` hands the storage back with its capacity intact.
    let mut heap: BinaryHeap<MergeHeapEntry> = BinaryHeap::from(std::mem::take(heap_buf));
    let mut adds = 0u64;
    while let Some(Reverse((coord, k, pos))) = heap.pop() {
        let s = stream(k);
        let item = s[pos];
        match out.last_mut() {
            Some(last) if last.coord == coord => {
                last.value += item.value;
                adds += 1;
            }
            _ => out.push(item),
        }
        if pos + 1 < s.len() {
            heap.push(Reverse((s[pos + 1].coord, k, pos + 1)));
        }
    }
    *heap_buf = heap.into_vec();
    adds
}

/// Merges `k` sorted streams into one, folding duplicate coordinates
/// (adder slice) and dropping nothing else. Returns the stream and the
/// number of additions performed.
///
/// This is the functional model of one merge-tree round; the engine
/// crate's `MergeTree` is the cycle-level model of the same computation,
/// and both enforce the same input contract — streams sorted by packed
/// coordinate (`sparch_engine::item::is_sorted`) — so they are
/// interchangeable and cross-validated (see `tests/merge_contract.rs`).
///
/// # Panics
///
/// Panics in debug builds if an input stream is not sorted by coordinate.
pub fn kway_merge_fold(streams: &[&[MergeItem]]) -> (Vec<MergeItem>, u64) {
    let mut out = Vec::new();
    let adds = kway_merge_fold_into(streams, &mut out);
    (out, adds)
}

/// Like [`kway_merge_fold`], but appends into a caller-provided buffer
/// (cleared first), so repeated merges can reuse one allocation. Returns
/// the number of additions performed.
///
/// The simulator's round hot path drives this through [`crate::SimScratch`],
/// which also recycles the merge heap's backing storage; after a warm-up
/// run the per-round merge performs no heap allocation at all.
///
/// # Panics
///
/// Panics in debug builds if an input stream is not sorted by coordinate.
pub fn kway_merge_fold_into(streams: &[&[MergeItem]], out: &mut Vec<MergeItem>) -> u64 {
    kway_merge_fold_with(streams.len(), |k| streams[k], out, &mut Vec::new())
}

/// Inputs to the per-round cycle model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundCost {
    /// Scalar multiplications performed by the multiplier array.
    pub multiplies: u64,
    /// Elements entering the merge tree (leaf + partial streams).
    pub input_elements: u64,
    /// Elements leaving the root after folding.
    pub output_elements: u64,
    /// DRAM bytes moved (all categories).
    pub dram_bytes: u64,
    /// Left-matrix elements streamed this round (fills the look-ahead
    /// FIFO).
    pub mat_a_elements: u64,
    /// Prefetch-buffer line misses this round (replacement-logic
    /// occupancy).
    pub line_misses: u64,
    /// Row fetches that pay unhidden DRAM latency (prefetcher disabled).
    pub unhidden_fetches: u64,
}

/// Architectural constants the cost model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// DRAM bytes per cycle (128 for Table I's HBM).
    pub bytes_per_cycle: f64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Merge-tree layers (pipeline depth).
    pub tree_layers: usize,
    /// Merger throughput in elements per cycle.
    pub merger_width: usize,
    /// Parallel multipliers.
    pub multipliers: usize,
    /// Look-ahead FIFO depth in elements.
    pub lookahead: usize,
    /// Buffer lines (replacement-logic depth grows with `log2(lines)`).
    pub buffer_lines: usize,
    /// Independent DRAM-channel fetchers (latency overlap factor).
    pub fetchers: usize,
}

impl CostParams {
    /// Cycles for one round: `max(memory-bound, compute-bound) + startup`.
    pub fn round_cycles(&self, cost: &RoundCost) -> u64 {
        let mem = (cost.dram_bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        let compute = (cost.multiplies.div_ceil(self.multipliers as u64))
            .max(cost.input_elements.div_ceil(self.merger_width as u64))
            .max(cost.output_elements.div_ceil(self.merger_width as u64));
        mem.max(compute) + self.startup_cycles(cost) + self.overheads(cost)
    }

    /// Per-round startup: first DRAM access latency, merge-tree pipeline
    /// fill, and filling the look-ahead FIFO before multiply can start
    /// ("we need more time to fill the larger FIFO at the start of each
    /// round", §III-D).
    pub fn startup_cycles(&self, cost: &RoundCost) -> u64 {
        let tree_fill = (self.tree_layers as u64) * 4;
        let elements_per_cycle = self.bytes_per_cycle / 12.0;
        let fill_elements = (self.lookahead as u64).min(cost.mat_a_elements);
        let fifo_fill = (fill_elements as f64 / elements_per_cycle).ceil() as u64;
        self.dram_latency + tree_fill + fifo_fill
    }

    /// Serialized overheads: replacement logic occupancy beyond the
    /// 1024-line design point (a reduction tree over line metadata grows
    /// by one level per doubling), and unhidden DRAM latency when the
    /// prefetcher is absent (row fetches stall the multipliers, overlapped
    /// only across the independent channel fetchers).
    pub fn overheads(&self, cost: &RoundCost) -> u64 {
        let extra_levels = (self.buffer_lines.max(1) as f64).log2() - 10.0;
        let replacement = (cost.line_misses as f64 * extra_levels.max(0.0) * 0.6).round() as u64;
        let unhidden =
            cost.unhidden_fetches * self.dram_latency / (self.fetchers as u64).max(1) / 4;
        replacement + unhidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_engine::item::{is_sorted_unique, stream_of};

    #[test]
    fn kway_merge_matches_oracle() {
        let s1 = stream_of(&[(0, 0, 1.0), (0, 5, 2.0), (3, 3, 3.0)]);
        let s2 = stream_of(&[(0, 0, 10.0), (1, 1, 4.0)]);
        let s3 = stream_of(&[(0, 5, -2.0), (9, 9, 1.0)]);
        let (out, adds) = kway_merge_fold(&[&s1, &s2, &s3]);
        assert!(is_sorted_unique(&out));
        assert_eq!(adds, 2);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].value, 11.0); // (0,0): 1 + 10
        assert_eq!(out[1].value, 0.0); // (0,5): 2 - 2 (kept as explicit zero)
    }

    #[test]
    fn kway_merge_empty_and_single() {
        let (out, adds) = kway_merge_fold(&[]);
        assert!(out.is_empty());
        assert_eq!(adds, 0);
        let s = stream_of(&[(1, 1, 1.0)]);
        let (out, _) = kway_merge_fold(&[&s]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn into_variant_matches_and_reuses_buffer() {
        let s1 = stream_of(&[(0, 0, 1.0), (2, 2, 2.0)]);
        let s2 = stream_of(&[(0, 0, 3.0), (1, 1, 4.0)]);
        let (expected, expected_adds) = kway_merge_fold(&[&s1, &s2]);
        let mut out = Vec::new();
        let adds = kway_merge_fold_into(&[&s1, &s2], &mut out);
        assert_eq!(out, expected);
        assert_eq!(adds, expected_adds);
        // A second merge into the same buffer replaces the contents.
        let adds2 = kway_merge_fold_into(&[&s2], &mut out);
        assert_eq!(adds2, 0);
        assert_eq!(out, s2);
    }

    #[test]
    fn kway_merge_matches_engine_tree() {
        use sparch_engine::{MergeTree, MergeTreeConfig};
        let streams: Vec<Vec<MergeItem>> = (0..8)
            .map(|k| {
                (0..40u32)
                    .map(|i| MergeItem::new(i, k, 1.0 + k as f64))
                    .collect()
            })
            .collect();
        let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
        let (fast, _) = kway_merge_fold(&refs);
        let tree = MergeTree::new(MergeTreeConfig {
            layers: 3,
            ..Default::default()
        });
        let (slow, _) = tree.merge(streams.clone());
        assert_eq!(fast, slow, "functional and cycle models must agree");
    }

    fn params() -> CostParams {
        CostParams {
            bytes_per_cycle: 128.0,
            dram_latency: 64,
            tree_layers: 6,
            merger_width: 16,
            multipliers: 16,
            lookahead: 8192,
            buffer_lines: 1024,
            fetchers: 16,
        }
    }

    #[test]
    fn memory_bound_round() {
        let cost = RoundCost {
            multiplies: 100,
            input_elements: 100,
            output_elements: 80,
            dram_bytes: 128_000,
            mat_a_elements: 0,
            ..Default::default()
        };
        let cycles = params().round_cycles(&cost);
        // 1000 memory cycles dominate the ~7 compute cycles.
        assert!(cycles >= 1000 + 64);
        assert!(cycles < 1200);
    }

    #[test]
    fn compute_bound_round() {
        let cost = RoundCost {
            multiplies: 160_000,
            input_elements: 160_000,
            output_elements: 100_000,
            dram_bytes: 1280,
            ..Default::default()
        };
        let cycles = params().round_cycles(&cost);
        assert!(cycles >= 10_000, "16e4 multiplies / 16 per cycle");
    }

    #[test]
    fn lookahead_fill_charged_once_per_round() {
        let mut p = params();
        let cost = RoundCost {
            mat_a_elements: 100_000,
            ..Default::default()
        };
        let small = p.startup_cycles(&cost);
        p.lookahead = 16384;
        let large = p.startup_cycles(&cost);
        assert!(large > small, "bigger look-ahead FIFO fills longer");
    }

    #[test]
    fn unhidden_latency_penalizes_missing_prefetcher() {
        let p = params();
        let cost = RoundCost {
            unhidden_fetches: 10_000,
            ..Default::default()
        };
        assert!(p.overheads(&cost) > 0);
        let cost_hidden = RoundCost::default();
        assert_eq!(p.overheads(&cost_hidden), 0);
    }

    #[test]
    fn replacement_overhead_only_beyond_design_point() {
        let mut p = params();
        let cost = RoundCost {
            line_misses: 100_000,
            ..Default::default()
        };
        assert_eq!(p.overheads(&cost), 0, "1024 lines is the design point");
        p.buffer_lines = 4096;
        assert!(p.overheads(&cost) > 0);
    }
}
