//! Matrix condensing (paper §II-B, Figure 7).
//!
//! "We condense all elements in a row to the leftmost column. In this way,
//! the number of columns of the condensed left matrix is far less than the
//! original one." The condensed matrix is **not** a new storage format —
//! "CSR format and our condensed format are two different views of the
//! same data": condensed column `j` is simply the j-th element of every
//! row that has one. Each element keeps its *original* column index,
//! which is what selects the right-matrix row during the multiply phase.
//!
//! Correctness rests on the outer product's indifference to how columns
//! are grouped: merging two left-matrix columns (keeping original indices)
//! and multiplying is the same as multiplying the columns separately and
//! merging the results — "We use a cheap merge of the left matrix to
//! replace an expensive merge of the much longer multiplied results."

use serde::{Deserialize, Serialize};
use sparch_sparse::{Csr, Index, Value};

/// One element of a condensed column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CondensedElement {
    /// The element's row in the left matrix (also the row of every partial
    /// product it spawns).
    pub row: Index,
    /// The element's *original* column — the right-matrix row to fetch.
    pub orig_col: Index,
    /// The element's value.
    pub value: Value,
}

/// The condensed-column view over a CSR matrix.
///
/// Construction is O(nnz): element `k` of row `r` is appended to condensed
/// column `k`'s row list. Iterating a condensed column yields elements in
/// ascending row order, which is exactly the order that keeps the
/// multiplied partial matrix sorted by `(row, col)` with zero extra work.
///
/// # Example
///
/// ```
/// use sparch_core::CondensedView;
/// use sparch_sparse::{Csr, Dense};
///
/// // rows have 2, 0 and 3 elements → 3 condensed columns (longest row)
/// let a = Dense::from_rows(&[
///     &[1.0, 0.0, 2.0, 0.0],
///     &[0.0, 0.0, 0.0, 0.0],
///     &[3.0, 4.0, 0.0, 5.0],
/// ]).to_csr();
/// let v = CondensedView::new(&a);
/// assert_eq!(v.num_cols(), 3);
/// let col0: Vec<_> = v.col(0).map(|e| (e.row, e.orig_col)).collect();
/// assert_eq!(col0, vec![(0, 0), (2, 0)]);
/// let col2: Vec<_> = v.col(2).map(|e| (e.row, e.orig_col)).collect();
/// assert_eq!(col2, vec![(2, 3)]); // only row 2 is long enough
/// ```
#[derive(Debug, Clone)]
pub struct CondensedView<'a> {
    matrix: &'a Csr,
    /// `cols[j]` = rows that have a j-th element, ascending.
    cols: Vec<Vec<Index>>,
}

impl<'a> CondensedView<'a> {
    /// Builds the view in O(nnz) time and O(nnz) extra index memory.
    pub fn new(matrix: &'a Csr) -> Self {
        let mut cols: Vec<Vec<Index>> = vec![Vec::new(); matrix.max_row_nnz()];
        for r in 0..matrix.rows() {
            for col in cols.iter_mut().take(matrix.row_nnz(r)) {
                col.push(r as Index);
            }
        }
        CondensedView { matrix, cols }
    }

    /// The underlying CSR matrix.
    pub fn matrix(&self) -> &Csr {
        self.matrix
    }

    /// Number of condensed columns — "the length of the longest row in the
    /// original matrix"; equivalently the number of partial matrices the
    /// multiply phase produces.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of elements in condensed column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_cols()`.
    pub fn col_len(&self, j: usize) -> usize {
        self.cols[j].len()
    }

    /// Iterates condensed column `j` in ascending row order.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_cols()`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = CondensedElement> + '_ {
        let (col_idx, values) = (self.matrix.col_indices(), self.matrix.values());
        let row_ptr = self.matrix.row_ptr();
        self.cols[j].iter().map(move |&r| {
            let k = row_ptr[r as usize] + j;
            CondensedElement {
                row: r,
                orig_col: col_idx[k],
                value: values[k],
            }
        })
    }

    /// The multiplied size of condensed column `j` against right matrix
    /// `b`: `Σ nnz(B_row(orig_col))` — the Huffman scheduler's leaf weight.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_cols()` or an original column exceeds `b`'s rows.
    pub fn col_weight(&self, j: usize, b: &Csr) -> u64 {
        self.col(j)
            .map(|e| b.row_nnz(e.orig_col as usize) as u64)
            .sum()
    }

    /// All column weights at once (leaf weights for the scheduler).
    pub fn col_weights(&self, b: &Csr) -> Vec<u64> {
        (0..self.num_cols())
            .map(|j| self.col_weight(j, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::{algo, gen, Coo, Dense};

    #[test]
    fn condensed_count_is_three_orders_smaller_on_sparse() {
        // §II-B: "reduce it from 100,000 to 100~1,000".
        let a = gen::uniform_random(5000, 5000, 5000 * 6, 3);
        let v = CondensedView::new(&a);
        let occupied = a.to_csc().occupied_cols();
        assert!(
            v.num_cols() < occupied / 50,
            "{} vs {}",
            v.num_cols(),
            occupied
        );
    }

    #[test]
    fn figure7_style_column_contents() {
        // Each condensed column holds the j-th element of every row.
        let a = Dense::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 4.0, 0.0], &[5.0, 0.0, 6.0]]).to_csr();
        let v = CondensedView::new(&a);
        assert_eq!(v.num_cols(), 3);
        let col0: Vec<_> = v.col(0).map(|e| (e.row, e.orig_col, e.value)).collect();
        assert_eq!(col0, vec![(0, 0, 1.0), (1, 1, 4.0), (2, 0, 5.0)]);
        let col1: Vec<_> = v.col(1).map(|e| (e.row, e.orig_col, e.value)).collect();
        assert_eq!(col1, vec![(0, 1, 2.0), (2, 2, 6.0)]);
        assert_eq!(v.col_len(2), 1);
    }

    #[test]
    fn column_rows_ascend() {
        let a = gen::rmat_graph500(256, 6, 5);
        let v = CondensedView::new(&a);
        for j in 0..v.num_cols() {
            let rows: Vec<Index> = v.col(j).map(|e| e.row).collect();
            assert!(
                rows.windows(2).all(|w| w[0] < w[1]),
                "column {j} rows not ascending"
            );
        }
    }

    #[test]
    fn all_elements_covered_exactly_once() {
        let a = gen::uniform_random(100, 80, 600, 9);
        let v = CondensedView::new(&a);
        let mut seen = Coo::new(a.rows(), a.cols());
        for j in 0..v.num_cols() {
            for e in v.col(j) {
                seen.push(e.row, e.orig_col, e.value);
            }
        }
        assert_eq!(seen.to_csr(), a, "condensed view must partition the matrix");
    }

    #[test]
    fn weights_sum_to_multiply_flops() {
        let a = gen::uniform_random(60, 60, 300, 2);
        let b = gen::uniform_random(60, 60, 300, 3);
        let v = CondensedView::new(&a);
        let total: u64 = v.col_weights(&b).iter().sum();
        assert_eq!(total, algo::multiply_flops(&a, &b));
    }

    #[test]
    fn empty_matrix_has_no_columns() {
        let a = Csr::zero(10, 10);
        let v = CondensedView::new(&a);
        assert_eq!(v.num_cols(), 0);
    }
}
