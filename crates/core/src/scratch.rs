//! Reusable simulation buffers: the zero-allocation round hot path.
//!
//! [`SpArchSim::run`](crate::SpArchSim::run) allocates fresh stream
//! buffers for every round of every task. That is fine for a single run,
//! but the paper's evaluation sweeps hundreds of independent simulations
//! (20 suite matrices × ablations × design-space points), and a sharded
//! sweep wants each worker to pay the allocator once, not per round.
//!
//! [`SimScratch`] owns every buffer the round-execute stage touches:
//!
//! * the per-leaf multiplied `MergeItem` streams,
//! * the per-round merged outputs (partial results),
//! * the merge heap's backing storage,
//! * the prefetch stage's access lists and per-round MatB accounting.
//!
//! Buffers are indexed by leaf/round id, so re-running the **same** task
//! refills each buffer to exactly its previous size: after one warm-up
//! run the execute stage performs no heap allocation at all (pinned by
//! `crates/core/tests/zero_alloc.rs`). Across *different* tasks the
//! buffers simply grow to the high-water mark and stay there.

use crate::condense::CondensedElement;
use crate::pipeline::MergeHeapEntry;
use sparch_engine::MergeItem;

/// Per-round MatB accounting produced by the prefetch stage and consumed
/// by the execute stage.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RoundMatB {
    /// Bytes fetched from DRAM for this round's row accesses.
    pub bytes: u64,
    /// Row accesses that actually touched DRAM.
    pub row_fetches: u64,
    /// Buffer-line misses attributed to this round.
    pub line_misses: u64,
}

/// Reusable buffers for [`SpArchSim::run_with_scratch`](crate::SpArchSim::run_with_scratch).
///
/// A scratch is plain state — create one per worker thread and feed it
/// every simulation that worker runs:
///
/// ```
/// use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
/// use sparch_sparse::gen;
///
/// let sim = SpArchSim::new(SpArchConfig::default());
/// let mut scratch = SimScratch::new();
/// for seed in 0..3 {
///     let a = gen::uniform_random(64, 64, 300, seed);
///     let report = sim.run_with_scratch(&a, &a, &mut scratch);
///     assert_eq!(report.result().rows(), 64);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Multiplied stream of leaf `i` (index = leaf id, stable per task).
    pub(crate) mult_streams: Vec<Vec<MergeItem>>,
    /// Merged output of round `r` (index = round id; the last round's
    /// entry is the final result stream consumed by the writeback stage).
    pub(crate) round_outputs: Vec<Vec<MergeItem>>,
    /// Backing storage for the k-way merge heap.
    pub(crate) merge_heap: Vec<MergeHeapEntry>,
    /// Guard: which round outputs have been consumed by a later round
    /// (every spill is read back exactly once; a malformed plan that
    /// references a round twice must fail loudly, not double-merge).
    pub(crate) round_consumed: Vec<bool>,
    /// Prefetch stage: the whole-task MatB row-access list.
    pub(crate) accesses: Vec<u32>,
    /// Prefetch stage: staging area for one round's fresh columns (the
    /// column fetcher wants them contiguous).
    pub(crate) round_cols: Vec<Vec<CondensedElement>>,
    /// Prefetch stage: per-round MatB accounting.
    pub(crate) round_matb: Vec<RoundMatB>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Clears `pool` down to `n` empty inner buffers, keeping every
    /// allocation (inner vectors beyond `n` survive for later tasks).
    fn clear_pool<T>(pool: &mut Vec<Vec<T>>, n: usize) {
        for v in pool.iter_mut() {
            v.clear();
        }
        if pool.len() < n {
            pool.resize_with(n, Vec::new);
        }
    }

    /// Prepares the prefetch-stage buffers for a task with `num_rounds`
    /// rounds.
    pub(crate) fn prepare_prefetch(&mut self, num_rounds: usize) {
        self.accesses.clear();
        self.round_matb.clear();
        self.round_matb.reserve(num_rounds);
        for v in self.round_cols.iter_mut() {
            v.clear();
        }
    }

    /// Prepares the execute-stage buffers for a task with `num_leaves`
    /// leaves and `num_rounds` rounds.
    pub(crate) fn prepare_execute(&mut self, num_leaves: usize, num_rounds: usize) {
        Self::clear_pool(&mut self.mult_streams, num_leaves);
        Self::clear_pool(&mut self.round_outputs, num_rounds);
        self.merge_heap.clear();
        self.round_consumed.clear();
        self.round_consumed.resize(num_rounds, false);
    }

    /// The final result stream of the last executed task (round
    /// `num_rounds - 1`'s output).
    pub(crate) fn final_stream(&self, num_rounds: usize) -> &[MergeItem] {
        &self.round_outputs[num_rounds - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_keep_allocations_across_tasks() {
        let mut s = SimScratch::new();
        s.prepare_execute(3, 2);
        s.mult_streams[2].reserve(100);
        let cap = s.mult_streams[2].capacity();
        // A smaller follow-up task must not shrink or drop the buffers.
        s.prepare_execute(1, 1);
        assert_eq!(s.mult_streams.len(), 3);
        assert!(s.mult_streams[2].capacity() >= cap);
        assert!(s.mult_streams.iter().all(|v| v.is_empty()));
    }
}
