//! Pins the zero-allocation guarantee of the round-execute hot path.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up run with the same task, `SpArchSim::execute_stage` must not
//! allocate at all — every stream buffer, the merge heap's storage and
//! the per-round accounting live in the reused [`SimScratch`].
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counter.

use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
use sparch_sparse::gen;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn execute_stage_stops_allocating_after_warmup() {
    // A multi-round schedule (2 tree layers = 4-way merge) exercises
    // leaf streams, partial spills and re-reads — the whole hot path.
    let a = gen::rmat_graph500(256, 8, 42);
    let sim = SpArchSim::new(SpArchConfig::default().with_tree_layers(2));
    let mut scratch = SimScratch::new();

    let warm = sim.run_with_scratch(&a, &a, &mut scratch);
    assert!(warm.perf.rounds > 1, "need a multi-round schedule");
    sim.run_with_scratch(&a, &a, &mut scratch);

    // Plan and prefetch may allocate (schedulers, prefetch bookkeeping);
    // the round-execute stage must not.
    let plan = sim.plan_stage(&a, &a);
    let prefetch = sim.prefetch_stage(&plan, &a, &mut scratch);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let totals = sim.execute_stage(&plan, &a, &mut scratch);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "execute stage performed {allocations} allocations after warm-up"
    );

    // The measured run still produces the exact result.
    let report = sim.writeback_stage(&a, &a, &plan, prefetch, totals, &scratch);
    assert_eq!(report.result(), warm.result());
    assert_eq!(report.perf, warm.perf);
}
