//! Build-smoke assertions: the accelerator simulator's result must match
//! the software reference bit-for-bit on coordinates and to 1e-9 on
//! values, and must survive every format round-trip — the minimum bar for
//! any future change to the workspace wiring.

use sparch::prelude::*;
use sparch::sparse::{algo, gen};

/// Collects a CSR matrix as `(row, col, value)` triples in row-major order.
fn triples(m: &Csr) -> Vec<(u32, u32, f64)> {
    m.iter().collect()
}

#[test]
fn simulator_matches_gustavson_exactly_on_rmat() {
    let a = gen::rmat_graph500(128, 6, 42);
    let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
    let reference = algo::gustavson(&a, &a);
    let got = report.result();

    // Coordinates bit-for-bit.
    let got_coords: Vec<(u32, u32)> = got.iter().map(|(r, c, _)| (r, c)).collect();
    let ref_coords: Vec<(u32, u32)> = reference.iter().map(|(r, c, _)| (r, c)).collect();
    assert_eq!(
        got_coords, ref_coords,
        "coordinate structure must match exactly"
    );

    // Values within 1e-9.
    for ((_, _, gv), (r, c, rv)) in got.iter().zip(reference.iter()) {
        assert!(
            (gv - rv).abs() <= 1e-9,
            "value mismatch at ({r}, {c}): {gv} vs {rv}"
        );
    }
}

#[test]
fn simulator_result_survives_format_round_trips() {
    let a = gen::rmat_graph500(96, 5, 7);
    let product = SpArchSim::new(SpArchConfig::default())
        .run(&a, &a)
        .result()
        .clone();

    let via_coo = product.to_coo().to_csr();
    assert_eq!(triples(&via_coo), triples(&product), "CSR → COO → CSR");

    let via_csc = product.to_csc().to_csr();
    assert_eq!(triples(&via_csc), triples(&product), "CSR → CSC → CSR");

    let via_both = product.to_coo().to_csr().to_csc().to_csr();
    assert_eq!(
        triples(&via_both),
        triples(&product),
        "CSR → COO → CSR → CSC → CSR"
    );
}

#[test]
fn round_tripped_operands_produce_identical_products() {
    let a = gen::rmat_graph500(64, 4, 3);
    let b = gen::uniform_random(64, 64, 384, 4);
    let sim = SpArchSim::new(SpArchConfig::default());
    let direct = sim.run(&a, &b);
    let round_tripped = sim.run(&a.to_coo().to_csr(), &b.to_csc().to_csr());
    assert_eq!(
        triples(direct.result()),
        triples(round_tripped.result()),
        "operand round-trips must not perturb the product"
    );
}
