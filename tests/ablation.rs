//! Ablation trends (Figures 2 and 16): each technique must move DRAM
//! traffic and performance in the direction the paper reports.

use sparch::baselines::OuterSpaceModel;
use sparch::core::{SpArchConfig, SpArchSim};
use sparch::mem::TrafficCategory;
use sparch::sparse::{gen, Csr};

fn workload() -> Csr {
    gen::rmat_graph500(2048, 8, 77)
}

#[test]
fn ladder_improves_monotonically_after_pipelining() {
    let a = workload();
    let mut gflops = Vec::new();
    let mut traffic = Vec::new();
    for (name, config) in SpArchConfig::ablation_ladder() {
        let r = SpArchSim::new(config).run(&a, &a);
        eprintln!(
            "{name}: {:.3} GFLOPS, {:.2} MB",
            r.perf.gflops,
            r.traffic.total_mb()
        );
        gflops.push(r.perf.gflops);
        traffic.push(r.traffic.total_bytes());
    }
    // Each added technique speeds things up and cuts traffic.
    for i in 1..gflops.len() {
        assert!(
            gflops[i] > gflops[i - 1],
            "step {i} did not speed up: {gflops:?}"
        );
        assert!(
            traffic[i] < traffic[i - 1],
            "step {i} did not reduce traffic: {traffic:?}"
        );
    }
}

#[test]
fn pipelining_alone_loses_to_outerspace() {
    // Figure 16's first bar: pipelined multiply-merge *without* the other
    // three techniques is slower than OuterSPACE (5.7x in the paper) —
    // partial results thrash DRAM.
    let a = workload();
    let (_, pipeline_only) = &SpArchConfig::ablation_ladder()[0];
    let naive = SpArchSim::new(pipeline_only.clone()).run(&a, &a);
    let outer = OuterSpaceModel::default().run(&a, &a);
    assert!(
        naive.perf.gflops < outer.gflops,
        "pipelined-only ({:.2}) must underperform OuterSPACE ({:.2})",
        naive.perf.gflops,
        outer.gflops
    );
}

#[test]
fn condensing_slashes_partial_traffic() {
    // On the power-law surrogate the hub rows keep the condensed-column
    // count high (max row length), so the gain is a solid factor...
    let a = workload();
    let base = SpArchConfig::ablation_ladder()[0].1.clone();
    let with = SpArchConfig::ablation_ladder()[1].1.clone();
    let before = SpArchSim::new(base.clone()).run(&a, &a);
    let after = SpArchSim::new(with.clone()).run(&a, &a);
    assert!(
        after.traffic.partial_bytes() * 2 < before.traffic.partial_bytes(),
        "condensing must slash spilled-partial traffic: {} -> {}",
        before.traffic.partial_bytes(),
        after.traffic.partial_bytes()
    );
    // ...and on a uniform matrix (the paper's 100k-columns-to-100 regime
    // in miniature) condensing eliminates multi-round merging entirely.
    let u = gen::uniform_random(2048, 2048, 2048 * 6, 5);
    let before_u = SpArchSim::new(base).run(&u, &u);
    let after_u = SpArchSim::new(with).run(&u, &u);
    assert!(before_u.traffic.partial_bytes() > 0);
    assert_eq!(
        after_u.traffic.partial_bytes(),
        0,
        "a uniform matrix condenses into a single merge round"
    );
}

#[test]
fn huffman_scheduler_cuts_partial_traffic_further() {
    let a = workload();
    // Use a small tree so scheduling matters even after condensing.
    let random = SpArchConfig::ablation_ladder()[1]
        .1
        .clone()
        .with_tree_layers(3);
    let huffman = SpArchConfig::ablation_ladder()[2]
        .1
        .clone()
        .with_tree_layers(3);
    let r_rand = SpArchSim::new(random).run(&a, &a);
    let r_huff = SpArchSim::new(huffman).run(&a, &a);
    assert!(
        r_huff.traffic.partial_bytes() <= r_rand.traffic.partial_bytes(),
        "huffman {} must not exceed random {}",
        r_huff.traffic.partial_bytes(),
        r_rand.traffic.partial_bytes()
    );
}

#[test]
fn prefetcher_recovers_input_reuse() {
    let a = workload();
    let without = SpArchSim::new(SpArchConfig::ablation_ladder()[2].1.clone()).run(&a, &a);
    let with = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
    let b_without = without.traffic.bytes(TrafficCategory::MatB);
    let b_with = with.traffic.bytes(TrafficCategory::MatB);
    // Paper: 2.6x less DRAM access of the second matrix (62% hit rate).
    assert!(
        (b_without as f64) / (b_with as f64) > 1.5,
        "B-traffic reduction too small: {b_without} -> {b_with}"
    );
}

#[test]
fn full_sparch_beats_outerspace_on_traffic_and_speed() {
    let a = workload();
    let sparch = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
    let outer = OuterSpaceModel::default().run(&a, &a);
    assert!(sparch.perf.gflops > outer.gflops);
    assert!(sparch.traffic.total_bytes() < outer.traffic.total_bytes());
}

#[test]
fn deeper_trees_reduce_partial_traffic() {
    // Figure 18's trend: more layers, fewer spills.
    let a = workload();
    let mut last = u64::MAX;
    for layers in [2usize, 4, 6] {
        let r = SpArchSim::new(SpArchConfig::default().with_tree_layers(layers)).run(&a, &a);
        assert!(
            r.traffic.partial_bytes() <= last,
            "layers {layers} increased partial traffic"
        );
        last = r.traffic.partial_bytes();
    }
}
