//! Cross-crate correctness: the simulated accelerator must produce
//! bit-meaningful results identical (up to float summation order) to every
//! software SpGEMM algorithm, across matrix families, shapes and
//! configurations.

use sparch::core::{SchedulerKind, SpArchConfig, SpArchSim};
use sparch::engine::{item, MergeTree, MergeTreeConfig};
use sparch::sparse::{algo, gen, Csr};

fn families(seed: u64) -> Vec<(&'static str, Csr)> {
    vec![
        ("uniform", gen::uniform_random(150, 150, 900, seed)),
        ("rmat", gen::rmat_graph500(192, 6, seed)),
        ("poisson", gen::poisson3d(6, 6, 5)),
        ("banded", gen::banded(120, 2, 60, seed)),
        ("powerlaw", gen::powerlaw_rows(160, 1300, 1.6, seed)),
        ("blocks", gen::block_sparse(128, 128, 8, 0.15, seed)),
    ]
}

#[test]
fn simulator_matches_all_software_algorithms() {
    let sim = SpArchSim::new(SpArchConfig::default());
    for (name, a) in families(3) {
        let report = sim.run(&a, &a);
        let refs: Vec<(&str, Csr)> = vec![
            ("gustavson", algo::gustavson(&a, &a)),
            ("hash", algo::hash_spgemm(&a, &a)),
            ("heap", algo::heap_spgemm(&a, &a)),
            ("sort_merge", algo::sort_merge(&a, &a)),
            ("outer", algo::outer_product(&a, &a)),
        ];
        for (algo_name, reference) in refs {
            assert!(
                report.result().approx_eq(&reference, 1e-9),
                "{name}: simulator disagrees with {algo_name}"
            );
        }
    }
}

#[test]
fn simulator_exact_on_rectangular_chains() {
    // W1 (40x64) x A (64x32), then W2 (24x40) x that result.
    let w1 = gen::uniform_random(40, 64, 320, 5);
    let a = gen::uniform_random(64, 32, 256, 6);
    let sim = SpArchSim::new(SpArchConfig::default());
    let first = sim.run(&w1, &a);
    assert!(first.result().approx_eq(&algo::gustavson(&w1, &a), 1e-9));
    let w2 = gen::uniform_random(24, 40, 200, 7);
    let second = sim.run(&w2, first.result());
    assert!(second
        .result()
        .approx_eq(&algo::gustavson(&w2, first.result()), 1e-9));
}

#[test]
fn every_configuration_is_functionally_identical() {
    let a = gen::rmat_graph500(160, 5, 11);
    let reference = algo::gustavson(&a, &a);
    let configs: Vec<(String, SpArchConfig)> = vec![
        (
            "tiny tree".into(),
            SpArchConfig::default().with_tree_layers(1),
        ),
        (
            "narrow merger".into(),
            SpArchConfig::default().with_merger_width(2),
        ),
        (
            "no prefetch".into(),
            SpArchConfig::default().without_prefetcher(),
        ),
        (
            "no condensing".into(),
            SpArchConfig::default().without_condensing(),
        ),
        (
            "sequential sched".into(),
            SpArchConfig::default().with_scheduler(SchedulerKind::Sequential),
        ),
        (
            "random sched".into(),
            SpArchConfig::default().with_scheduler(SchedulerKind::Random(99)),
        ),
        ("tiny buffer".into(), {
            let mut c = SpArchConfig::default();
            c.prefetch.lines = 4;
            c.prefetch.line_elems = 8;
            c.prefetch.lookahead = 16;
            c
        }),
    ];
    for (name, config) in configs {
        let report = SpArchSim::new(config).run(&a, &a);
        assert!(
            report.result().approx_eq(&reference, 1e-9),
            "config '{name}' changed the numerical result"
        );
    }
}

#[test]
fn engine_merge_tree_agrees_with_outer_product_partials() {
    // Feed the cycle-level merge tree the real partial matrices of an
    // outer product and compare with the software product.
    let a = gen::uniform_random(48, 30, 260, 8);
    let b = gen::uniform_random(30, 52, 260, 9);
    let partials = algo::outer_product_partials(&a, &b);
    assert!(partials.len() <= 64, "fits one tree round");
    let inputs: Vec<Vec<sparch::engine::MergeItem>> =
        partials.iter().map(|p| item::stream_of(p)).collect();
    let tree = MergeTree::new(MergeTreeConfig::default());
    let (merged, stats) = tree.merge(inputs);
    assert!(item::is_sorted_unique(&merged));
    assert_eq!(stats.output_elements as usize, merged.len());

    let mut builder = sparch::sparse::CsrBuilder::new(a.rows(), b.cols());
    for m in &merged {
        builder.push(m.row(), m.col(), m.value);
    }
    let from_tree = builder.finish();
    assert!(
        from_tree.approx_eq(&algo::gustavson(&a, &b), 1e-9),
        "cycle-level tree result differs from software product"
    );
}

#[test]
fn deterministic_reports() {
    let a = gen::rmat_graph500(128, 4, 13);
    let sim = SpArchSim::new(SpArchConfig::default());
    let r1 = sim.run(&a, &a);
    let r2 = sim.run(&a, &a);
    assert_eq!(r1.perf, r2.perf);
    assert_eq!(r1.traffic, r2.traffic);
    assert_eq!(r1.result(), r2.result());
}
