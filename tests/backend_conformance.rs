//! Differential conformance harness for the eight software SpGEMM
//! backends — the six in-memory kernels, the out-of-core streaming
//! pipeline, and the distributed shard fleet (which degrades to
//! streaming, bit-identically, when no worker binary is around).
//!
//! Every backend is run over a grid of generator classes — R-MAT,
//! structured (Poisson / banded / block-sparse / power-law), rectangular,
//! matrices with empty rows and columns, explicit stored zeros,
//! duplicate-coordinate COO inputs, and the degenerate `1×N` / `N×1`
//! shapes — and each result is checked against the dense reference
//! (value-exact to 1e-9) and against `gustavson` (structure-exact).
//! On failure the harness reports the first diverging `(backend, class,
//! seed)` triple, which is exactly the reproducer a fix needs.
//!
//! The streaming backend additionally gets a budget sweep
//! ([`streaming_backend_under_every_budget_regime`]): the grid's hard
//! classes re-run through explicit spill-everything / spill-some /
//! in-core configurations, since `Backend::Streaming` itself pins one
//! default configuration.
//!
//! This suite is the serving layer's safety net: `sparch-serve` may
//! route any request to any backend, so "all backends agree everywhere"
//! is a correctness precondition for adaptive dispatch.

use sparch::serve::Backend;
use sparch::sparse::gen::arb::{self, ValueClass};
use sparch::sparse::{algo, gen, Coo, Csr};

/// One grid point: a labeled, seeded operand pair.
struct GridPoint {
    class: &'static str,
    seed: u64,
    a: Csr,
    b: Csr,
}

fn point(class: &'static str, seed: u64, a: Csr, b: Csr) -> GridPoint {
    assert_eq!(
        a.cols(),
        b.rows(),
        "grid point {class}/{seed} built an incompatible pair"
    );
    GridPoint { class, seed, a, b }
}

/// Checks every backend on one grid point. Returns the first divergence
/// as `(backend, what)` instead of asserting, so the caller can attach
/// the class and seed.
fn check_point(p: &GridPoint) -> Result<(), (String, String)> {
    let oracle = p.a.to_dense().matmul(&p.b.to_dense());
    let reference = algo::gustavson(&p.a, &p.b);
    // Backend::ALL is the serving layer's dispatch universe: a backend
    // added there automatically inherits every grid class here.
    for backend in Backend::ALL {
        let name = backend.name();
        let c = backend.run(&p.a, &p.b);
        if (c.rows(), c.cols()) != (p.a.rows(), p.b.cols()) {
            return Err((
                name.into(),
                format!(
                    "output shape {}x{} != {}x{}",
                    c.rows(),
                    c.cols(),
                    p.a.rows(),
                    p.b.cols()
                ),
            ));
        }
        let diff = c.to_dense().max_abs_diff(&oracle);
        if diff >= 1e-9 {
            return Err((
                name.into(),
                format!("dense-reference mismatch, max abs diff {diff:e}"),
            ));
        }
        if !c.approx_eq(&reference, 1e-9) {
            return Err((
                name.into(),
                format!(
                    "structural divergence from gustavson ({} vs {} nnz)",
                    c.nnz(),
                    reference.nnz()
                ),
            ));
        }
    }
    Ok(())
}

fn run_grid(points: Vec<GridPoint>) {
    assert!(!points.is_empty());
    for p in &points {
        if let Err((backend, what)) = check_point(p) {
            panic!(
                "conformance failure: backend {backend:?} diverged on class \
                 {:?} seed {}: {what}\n  A: {}x{} ({} nnz), B: {}x{} ({} nnz)",
                p.class,
                p.seed,
                p.a.rows(),
                p.a.cols(),
                p.a.nnz(),
                p.b.rows(),
                p.b.cols(),
                p.b.nnz()
            );
        }
    }
}

#[test]
fn rmat_power_law_graphs() {
    let points = (0..4)
        .map(|seed| {
            point(
                "rmat",
                seed,
                gen::rmat_graph500(48, 4, seed),
                gen::rmat_graph500(48, 6, seed + 100),
            )
        })
        .collect();
    run_grid(points);
}

#[test]
fn structured_matrices() {
    let mut points = Vec::new();
    let mesh = gen::poisson3d(3, 3, 3); // order 27
    points.push(point("poisson^2", 0, mesh.clone(), mesh));
    for seed in 0..3 {
        points.push(point(
            "banded*banded",
            seed,
            gen::banded(40, 2, 30, seed),
            gen::banded(40, 3, 20, seed + 10),
        ));
        points.push(point(
            "blocks*powerlaw",
            seed,
            gen::block_sparse(32, 32, 4, 0.3, seed),
            gen::powerlaw_rows(32, 200, 1.8, seed + 20),
        ));
    }
    run_grid(points);
}

#[test]
fn rectangular_shapes() {
    let points = (0..6)
        .map(|seed| {
            let (r, k, c) = (
                [5usize, 40, 7][seed as usize % 3],
                24,
                [33usize, 3][seed as usize % 2],
            );
            point(
                "rectangular",
                seed,
                gen::uniform_random(r, k, (r * 3).min(r * k / 2).max(1), seed),
                gen::uniform_random(k, c, (k * 2).min(k * c / 2).max(1), seed + 40),
            )
        })
        .collect();
    run_grid(points);
}

#[test]
fn empty_rows_and_columns() {
    let mut points = Vec::new();
    for seed in 0..4 {
        // A with populated rows only in the top quarter (three quarters of
        // rows empty) times B with entries only in the left few columns
        // (most columns empty) — plus fully empty operands on both sides.
        let mut a = Coo::new(32, 24);
        let mut b = Coo::new(24, 32);
        for (i, e) in gen::uniform_random(8, 24, 40, seed).iter().enumerate() {
            if i % 3 != 0 {
                a.push(e.0, e.1, e.2);
            }
        }
        for e in gen::uniform_random(24, 6, 30, seed + 7).iter() {
            b.push(e.0, e.1 * 5, e.2); // spread into columns 0,5,10,… leaving gaps
        }
        points.push(point("sparse-bands", seed, a.to_csr(), b.to_csr()));
    }
    points.push(point("zero*zero", 0, Csr::zero(5, 4), Csr::zero(4, 3)));
    points.push(point(
        "zero*dense",
        0,
        Csr::zero(6, 10),
        gen::uniform_random(10, 8, 40, 1),
    ));
    points.push(point(
        "dense*zero",
        0,
        gen::uniform_random(7, 9, 30, 2),
        Csr::zero(9, 5),
    ));
    points.push(point(
        "identity",
        0,
        Csr::identity(12),
        gen::uniform_random(12, 12, 50, 3),
    ));
    run_grid(points);
}

#[test]
fn explicit_zeros_are_propagated_consistently() {
    // Stored zeros in the inputs (ValueClass::SmallIntWithZeros keeps
    // them) must neither crash a backend nor change the agreed structure.
    let pairs = arb::spgemm_pair(20, 70, ValueClass::SmallIntWithZeros);
    let points = (0..12)
        .map(|seed| {
            let (a, b) = arb::sample(&pairs, seed);
            point("explicit-zeros", seed, a, b)
        })
        .collect();
    run_grid(points);
}

#[test]
fn duplicate_coordinate_coo_inputs() {
    // COO inputs with duplicate coordinates: canonicalization folds them
    // (possibly cancelling to explicit zero) before the multiply; every
    // backend must agree on the folded operand.
    let points = (0..8)
        .map(|seed| {
            let base_a = gen::uniform_random(18, 14, 60, seed);
            let base_b = gen::uniform_random(14, 16, 50, seed + 30);
            let mut a = base_a.to_coo();
            let mut b = base_b.to_coo();
            // Push every third entry again (doubling it) and an exact
            // cancellation for every fifth.
            for (i, e) in base_a.iter().enumerate() {
                if i % 3 == 0 {
                    a.push(e.0, e.1, e.2);
                }
                if i % 5 == 0 {
                    a.push(e.0, e.1, -2.0 * e.2); // folds to -e.2... then +e.2 may cancel
                }
            }
            for (i, e) in base_b.iter().enumerate() {
                if i % 4 == 0 {
                    b.push(e.0, e.1, -e.2); // cancels to an explicit stored zero
                }
            }
            point("dup-coo", seed, a.to_csr(), b.to_csr())
        })
        .collect();
    run_grid(points);
}

#[test]
fn one_by_n_and_n_by_one_shapes() {
    let mut points = Vec::new();
    for seed in 0..4 {
        let row = gen::uniform_random(1, 24, 12, seed); // 1×N
        let col = gen::uniform_random(24, 1, 12, seed + 50); // N×1
        points.push(point("row*col", seed, row.clone(), col.clone()));
        points.push(point(
            "col*row",
            seed,
            col,
            gen::uniform_random(1, 24, 12, seed + 90),
        ));
        points.push(point(
            "row*square",
            seed,
            row,
            gen::uniform_random(24, 24, 80, seed + 130),
        ));
    }
    // 1×1 edge.
    points.push(point(
        "scalar",
        0,
        gen::uniform_random(1, 1, 1, 1),
        gen::uniform_random(1, 1, 1, 2),
    ));
    run_grid(points);
}

/// The streaming pipeline across budget regimes on the grid's hard
/// classes: explicit stored zeros, duplicate-coordinate folds and
/// power-law structure, at budgets forcing everything / some / nothing
/// to spill and several panel counts. Structure must match `gustavson`
/// exactly; values to 1e-9 (the panel split regroups float summation).
#[test]
fn streaming_backend_under_every_budget_regime() {
    use sparch::stream::{MemoryBudget, StreamConfig, StreamingExecutor};
    let zero_pairs = arb::spgemm_pair(20, 70, ValueClass::SmallIntWithZeros);
    let mut points = vec![
        point(
            "rmat",
            0,
            gen::rmat_graph500(48, 4, 0),
            gen::rmat_graph500(48, 6, 100),
        ),
        point(
            "rect",
            1,
            gen::uniform_random(9, 24, 60, 1),
            gen::uniform_random(24, 33, 70, 2),
        ),
        point(
            "scalar",
            2,
            gen::uniform_random(1, 1, 1, 1),
            gen::uniform_random(1, 1, 1, 2),
        ),
    ];
    for seed in 0..4 {
        let (a, b) = arb::sample(&zero_pairs, seed);
        points.push(point("explicit-zeros", seed, a, b));
    }
    for p in &points {
        let reference = algo::gustavson(&p.a, &p.b);
        for budget in [0u64, 4 << 10, u64::MAX] {
            for panels in [1usize, 3, 7] {
                let exec = StreamingExecutor::new(StreamConfig {
                    budget: MemoryBudget::from_bytes(budget),
                    panels,
                    merge_ways: 3,
                    threads: Some(2),
                    ..StreamConfig::default()
                });
                let (c, report) = exec.multiply(&p.a, &p.b).expect("streaming multiply");
                assert!(
                    c.approx_eq(&reference, 1e-9),
                    "streaming diverged on class {:?} seed {} at budget {budget}, \
                     panels {panels} ({} vs {} nnz)",
                    p.class,
                    p.seed,
                    c.nnz(),
                    reference.nnz()
                );
                assert!(
                    report.peak_live_bytes <= budget,
                    "class {:?}: peak {} over budget {budget}",
                    p.class,
                    report.peak_live_bytes
                );
            }
        }
    }
}

/// The full grid in one sweep, so a future eighth backend only needs to
/// be added to `sparch::serve::Backend` to inherit every class.
#[test]
fn arb_randomized_sweep() {
    let float_pairs = arb::spgemm_pair(24, 90, ValueClass::Float);
    let int_pairs = arb::spgemm_pair(24, 90, ValueClass::SmallInt);
    let unit_pairs = arb::spgemm_pair(24, 90, ValueClass::Unit);
    let mut points = Vec::new();
    for seed in 0..16 {
        let (a, b) = arb::sample(&float_pairs, seed);
        points.push(point("arb-float", seed, a, b));
        let (a, b) = arb::sample(&int_pairs, seed);
        points.push(point("arb-int", seed, a, b));
        let (a, b) = arb::sample(&unit_pairs, seed);
        points.push(point("arb-unit", seed, a, b));
    }
    run_grid(points);
}
