//! The shared `MergeItem` stream contract — the integration tests the
//! module docs of `core::pipeline` and `engine::merge_tree` promise.
//!
//! Three models compute the same k-way merge-and-fold and must agree
//! element for element:
//!
//! * `core::pipeline::kway_merge_fold` — the functional model,
//! * `engine::MergeTree::merge` — the batch cycle-level model,
//! * `engine::MergeTreeSim` driven through the `Clocked` two-phase
//!   discipline with a streaming leaf feed — the pipelined model used by
//!   the round co-simulation.

use sparch::core::kway_merge_fold;
use sparch::engine::{Clock, Clocked, MergeItem, MergeTree, MergeTreeConfig, MergeTreeSim};
use sparch::sparse::gen;

/// Deterministic sorted streams with duplicate coordinates across (and
/// within reach of) every leaf, derived from an R-MAT matrix so the
/// coordinate distribution is realistically skewed.
fn skewed_streams(ways: usize, seed: u64) -> Vec<Vec<MergeItem>> {
    let a = gen::rmat_graph500(256, 8, seed);
    let mut streams: Vec<Vec<MergeItem>> = vec![Vec::new(); ways];
    for (i, (r, c, v)) in a.iter().enumerate() {
        streams[i % ways].push(MergeItem::new(r, c, v));
    }
    for s in &mut streams {
        s.sort_by_key(|item| item.coord);
    }
    streams
}

fn assert_streams_equal(label: &str, got: &[MergeItem], want: &[MergeItem]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.coord, w.coord, "{label}: coordinate mismatch");
        assert!(
            (g.value - w.value).abs() < 1e-12,
            "{label}: value mismatch at coord {}: {} vs {}",
            g.coord,
            g.value,
            w.value
        );
    }
}

#[test]
fn functional_and_batch_cycle_models_agree() {
    for (layers, seed) in [(1usize, 1u64), (2, 2), (3, 3), (4, 4), (6, 5)] {
        let ways = 1usize << layers;
        let streams = skewed_streams(ways, seed);
        let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
        let (functional, _) = kway_merge_fold(&refs);
        let tree = MergeTree::new(MergeTreeConfig {
            layers,
            ..Default::default()
        });
        let (cycle, stats) = tree.merge(streams.clone());
        assert_streams_equal(&format!("{ways}-way"), &cycle, &functional);
        assert_eq!(stats.output_elements as usize, cycle.len());
    }
}

#[test]
fn clocked_streaming_feed_agrees_with_functional_model() {
    let layers = 3usize;
    let ways = 1usize << layers;
    let streams = skewed_streams(ways, 9);
    let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
    let (functional, _) = kway_merge_fold(&refs);

    let mut sim = MergeTreeSim::new(MergeTreeConfig {
        layers,
        ..Default::default()
    });
    let mut cursors = vec![0usize; ways];
    let mut clock = Clock::new();
    while !sim.is_done() {
        sim.clock_update();
        // A bounded per-cycle feed with backpressure, like the multiplier
        // array latching products at the clock edge.
        for (k, stream) in streams.iter().enumerate() {
            for _ in 0..2 {
                if cursors[k] >= stream.len() {
                    sim.finish_leaf(k);
                    break;
                }
                match sim.push_leaf(k, stream[cursors[k]]) {
                    Ok(()) => cursors[k] += 1,
                    Err(_) => break, // leaf FIFO full this cycle
                }
            }
        }
        sim.clock_apply();
        clock.tick(&mut []);
        assert!(
            clock.cycles() < 1_000_000,
            "streaming merge failed to converge"
        );
    }
    assert_streams_equal("clocked streaming", sim.output(), &functional);
}

#[test]
fn contract_holds_for_duplicate_heavy_streams() {
    // Every stream carries the same coordinates: maximal folding.
    let ways = 4usize;
    let streams: Vec<Vec<MergeItem>> = (0..ways)
        .map(|k| {
            (0..100u32)
                .map(|i| MergeItem::new(i / 10, i % 10, (k + 1) as f64))
                .collect()
        })
        .collect();
    let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
    let (functional, adds) = kway_merge_fold(&refs);
    assert_eq!(
        functional.len(),
        100,
        "4 copies of 100 coordinates fold to 100"
    );
    assert_eq!(adds, 300);
    let expected_sum: f64 = (1..=ways).map(|k| k as f64).sum();
    assert!(functional.iter().all(|i| i.value == expected_sum));

    let tree = MergeTree::new(MergeTreeConfig {
        layers: 2,
        ..Default::default()
    });
    let (cycle, stats) = tree.merge(streams);
    assert_streams_equal("duplicate-heavy", &cycle, &functional);
    assert_eq!(stats.adds, adds, "both models charge the same additions");
}

#[test]
fn pipeline_register_delays_streams_without_loss() {
    // The Clocked discipline's reference component: a chain of registers
    // must deliver a stream unchanged, one cycle later per stage.
    use sparch::engine::PipelineReg;
    let stream: Vec<MergeItem> = (0..32).map(|i| MergeItem::new(0, i, i as f64)).collect();
    let mut a: PipelineReg<MergeItem> = PipelineReg::new();
    let mut b: PipelineReg<MergeItem> = PipelineReg::new();
    let mut clock = Clock::new();
    let mut out = Vec::new();
    let mut fed = 0usize;
    while out.len() < stream.len() {
        if fed < stream.len() {
            a.set_input(Some(stream[fed]));
            fed += 1;
        }
        clock.tick(&mut [&mut a, &mut b]);
        b.set_input(a.output());
        if let Some(item) = b.output() {
            out.push(item);
        }
        assert!(clock.cycles() < 1000);
    }
    assert_eq!(out, stream);
    assert!(
        clock.cycles() as usize > stream.len(),
        "the register stages add latency"
    );
}
