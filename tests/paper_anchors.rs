//! Anchors to numbers printed in the paper: worked examples, published
//! breakdowns and architectural constants that the reproduction must hit
//! exactly, plus trend claims it must reproduce qualitatively.

use sparch::baselines::OuterSpaceModel;
use sparch::core::{sched, MergePlan, Roofline, SchedulerKind, SpArchConfig, SpArchSim};
use sparch::mem::{AreaModel, EnergyModel, HbmConfig};
use sparch::sparse::gen;

/// Figure 8's leaf weights.
const FIG8: [u64; 12] = [15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];

#[test]
fn figure8_scheduler_totals() {
    let seq2 = MergePlan::build(SchedulerKind::Sequential, &FIG8, 2);
    let huff2 = MergePlan::build(SchedulerKind::Huffman, &FIG8, 2);
    let huff4 = MergePlan::build(SchedulerKind::Huffman, &FIG8, 4);
    assert_eq!(seq2.estimated_total_weight(), 365, "Figure 8(a)");
    assert_eq!(huff2.estimated_total_weight(), 354, "Figure 8(b)");
    assert_eq!(huff4.estimated_total_weight(), 228, "Figure 8(c)");
}

#[test]
fn formula1_kinit() {
    // §II-C Formula 1 with the Figure 8(c) example: first round merges 3.
    assert_eq!(sched::kinit(12, 4), 3);
    // Root always full afterwards.
    for (n, ways) in [(100, 64), (65, 64), (64, 64), (5, 4), (9, 3)] {
        let weights: Vec<u64> = (1..=n as u64).collect();
        let plan = MergePlan::build(SchedulerKind::Huffman, &weights, ways);
        assert_eq!(plan.rounds.last().unwrap().children.len(), ways.min(n));
    }
}

#[test]
fn table_i_constants() {
    let c = SpArchConfig::default();
    assert_eq!(c.merge_ways(), 64, "6 layers merge 64 arrays");
    assert_eq!(c.merger_width, 16, "16x16 hierarchical merger");
    assert_eq!(c.multipliers, 16, "2 groups x 8 multipliers");
    assert_eq!(c.prefetch.lookahead, 8192, "look-ahead of 8192 elements");
    assert_eq!(
        c.prefetch.lines * c.prefetch.line_elems * 12,
        1024 * 48 * 12,
        "prefetch buffer 1024 x 48 x 12 B"
    );
    assert_eq!(c.hbm.channels, 16, "16 HBM channels");
    assert!((HbmConfig::default().bandwidth_gbs() - 128.0).abs() < 1e-9);
}

#[test]
fn figure13_area_anchors() {
    let b = AreaModel::default().estimate();
    assert!((b.total() - 28.49).abs() < 0.1, "Table II: 28.49 mm2");
    assert!(
        (b.merge_tree / b.total() - 0.606).abs() < 0.01,
        "Figure 13a: merge tree is 60.6%"
    );
}

#[test]
fn table_iii_published_columns() {
    let (c, s, d, total) = EnergyModel::paper_nj_per_flop();
    assert_eq!((c, s, d, total), (0.26, 0.34, 0.29, 0.89));
    // OuterSPACE's published overall energy.
    assert!((OuterSpaceModel::default().nj_per_flop - 4.95).abs() < 1e-9);
}

#[test]
fn figure15_roofline_anchors() {
    let r = Roofline::paper_default();
    assert_eq!(r.compute_roof_gflops, 32.0);
    assert!(
        (r.roof_at(0.19) - 24.32).abs() < 0.01,
        "paper: 23.9 (rounded)"
    );
}

#[test]
fn outerspace_runs_at_a_tenth_of_peak() {
    // §I: "the performance of OuterSPACE is only 10.4% of the theoretical
    // peak". Its peak is also 32-ish GFLOPS-class; our model lands it in
    // low single digits on sparse workloads.
    let a = gen::rmat_graph500(4096, 8, 3);
    let r = OuterSpaceModel::default().run(&a, &a);
    assert!(
        r.gflops < 8.0,
        "OuterSPACE must stay far from the 32 GFLOPS roof"
    );
}

#[test]
fn headline_speedup_and_traffic_shape() {
    // The paper's headline: ~4x speedup and ~2.8x DRAM reduction over
    // OuterSPACE. Accept a band around those on a surrogate workload.
    let a = gen::rmat_graph500(4096, 8, 17);
    let sparch = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
    let outer = OuterSpaceModel::default().run(&a, &a);
    let speedup = sparch.perf.gflops / outer.gflops;
    let traffic_ratio = outer.traffic.total_bytes() as f64 / sparch.traffic.total_bytes() as f64;
    assert!(
        speedup > 1.5 && speedup < 20.0,
        "speedup {speedup:.2} outside the plausible band around 4x"
    );
    assert!(
        traffic_ratio > 1.3 && traffic_ratio < 12.0,
        "traffic reduction {traffic_ratio:.2} outside the band around 2.8x"
    );
}

#[test]
fn condensing_reduces_columns_by_orders_of_magnitude() {
    // §II-B: "we can reduce it from 100,000 to 100~1,000".
    let entry_like = gen::uniform_random(20_000, 20_000, 20_000 * 8, 23);
    let sim_cond = SpArchSim::new(SpArchConfig::default());
    let report = sim_cond.run(&entry_like, &entry_like);
    assert!(
        report.partial_matrices < 100,
        "condensed columns {} should be ~avg-degree-sized",
        report.partial_matrices
    );
    let occupied = entry_like.to_csc().occupied_cols();
    assert!(
        occupied > 100 * report.partial_matrices,
        "3 orders of magnitude claim"
    );
}

#[test]
fn prefetcher_hit_rate_near_paper() {
    // §I / §III-C: "The row buffer can achieve a 62% hit rate".
    let a = gen::rmat_graph500(8192, 8, 31);
    let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
    let rate = report.prefetch.hit_rate();
    assert!(
        rate > 0.40 && rate < 0.95,
        "hit rate {rate:.2} out of the plausible band around 0.62"
    );
}
