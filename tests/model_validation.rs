//! Validates the round-level cost model against the cycle-accurate
//! engine models: the fast path the whole-task simulator uses must agree
//! with the detailed hardware simulation on throughput-dominated runs.

use sparch::core::pipeline::{kway_merge_fold, CostParams, RoundCost};
use sparch::engine::{MergeItem, MergeTree, MergeTreeConfig, ZeroEliminator};
use sparch::sparse::gen;

fn params(layers: usize) -> CostParams {
    CostParams {
        bytes_per_cycle: 128.0,
        dram_latency: 64,
        tree_layers: layers,
        merger_width: 16,
        multipliers: 16,
        lookahead: 8192,
        buffer_lines: 1024,
        fetchers: 16,
    }
}

#[test]
fn round_model_tracks_cycle_accurate_tree() {
    // A compute-bound merge (no DRAM bytes charged): the cost model's
    // cycle estimate must land within 2x of the cycle-accurate tree.
    for layers in [3usize, 4, 6] {
        let ways = 1usize << layers;
        let inputs: Vec<Vec<MergeItem>> = (0..ways)
            .map(|k| {
                (0..600u32)
                    .map(|i| MergeItem::new(i, k as u32, 1.0))
                    .collect()
            })
            .collect();
        let tree = MergeTree::new(MergeTreeConfig {
            layers,
            ..Default::default()
        });
        let (out, stats) = tree.merge(inputs.clone());

        let total_in: u64 = inputs.iter().map(|s| s.len() as u64).sum();
        let cost = RoundCost {
            multiplies: 0,
            input_elements: total_in,
            output_elements: out.len() as u64,
            dram_bytes: 0,
            mat_a_elements: 0,
            ..Default::default()
        };
        // Compare steady-state throughput portions (strip fixed startup).
        let modelled = params(layers).round_cycles(&cost) - params(layers).startup_cycles(&cost);
        let measured = stats.cycles;
        let ratio = measured as f64 / modelled.max(1) as f64;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "layers {layers}: cycle-accurate {measured} vs model {modelled} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn functional_and_cycle_merges_agree_on_product_data() {
    let a = gen::rmat_graph500(96, 5, 3);
    let partials = sparch::sparse::algo::outer_product_partials(&a, &a);
    let streams: Vec<Vec<MergeItem>> = partials
        .iter()
        .take(64)
        .map(|p| p.iter().map(|&t| MergeItem::from(t)).collect())
        .collect();
    let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
    let (fast, _) = kway_merge_fold(&refs);
    let tree = MergeTree::new(MergeTreeConfig::default());
    let (slow, _) = tree.merge(streams.clone());
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(f.coord, s.coord);
        assert!((f.value - s.value).abs() < 1e-9);
    }
}

#[test]
fn zero_eliminator_latency_scales_with_width() {
    // The paper's logN-cycle latency claim, across widths.
    for (width, expected) in [(4usize, 2u64), (8, 3), (16, 4), (64, 6)] {
        let z = ZeroEliminator::new(width);
        assert_eq!(z.latency(), expected, "width {width}");
    }
}

#[test]
fn merger_throughput_is_width_per_cycle_at_scale() {
    use sparch::engine::HierarchicalMerger;
    let a: Vec<MergeItem> = (0..4096u32).map(|i| MergeItem::new(i, 0, 1.0)).collect();
    let b: Vec<MergeItem> = (0..4096u32).map(|i| MergeItem::new(i, 1, 1.0)).collect();
    let mut m = HierarchicalMerger::paper_default();
    let out = m.merge(&a, &b);
    assert_eq!(out.len(), 8192);
    // Exactly 16 per cycle in steady state.
    assert_eq!(m.stats().cycles, 8192 / 16);
}
