//! Property-based tests (proptest) on the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use sparch::core::{
    kway_merge_fold, kway_merge_fold_into, CondensedView, MergePlan, SchedulerKind, SpArchConfig,
    SpArchSim,
};
use sparch::engine::{item, merge_step, ComparatorMerger, HierarchicalMerger, MergeItem};
use sparch::sparse::gen::arb;
use sparch::sparse::{algo, Coo, Csr};

/// Strategy: a sorted, strictly-increasing coordinate stream.
fn sorted_stream() -> impl Strategy<Value = Vec<MergeItem>> {
    vec(0u64..500, 0..40).prop_map(|mut coords| {
        coords.sort_unstable();
        coords.dedup();
        coords
            .into_iter()
            .map(|c| MergeItem {
                coord: c,
                value: c as f64 + 0.5,
            })
            .collect()
    })
}

/// Strategy: a sorted stream that may repeat coordinates (duplicates are
/// legal merge-tree input; the fold sums them) with small integer values
/// so cancellations to exact zero are common.
fn sorted_dup_stream() -> impl Strategy<Value = Vec<MergeItem>> {
    vec((0u64..60, -3i64..=3), 0..50).prop_map(|mut pairs| {
        pairs.sort_by_key(|p| p.0);
        pairs
            .into_iter()
            .map(|(coord, v)| MergeItem {
                coord,
                value: v as f64,
            })
            .collect()
    })
}

/// `BinaryHeap`-based reference for the k-way merge-fold: push *every*
/// `(coord, stream, position)` up front, pop in sorted order, fold
/// duplicate coordinates. Same tie-break order as the streaming merge.
fn reference_merge_fold(streams: &[&[MergeItem]]) -> (Vec<MergeItem>, u64) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap = BinaryHeap::new();
    for (k, s) in streams.iter().enumerate() {
        for (pos, e) in s.iter().enumerate() {
            heap.push(Reverse((e.coord, k, pos)));
        }
    }
    let mut out: Vec<MergeItem> = Vec::new();
    let mut adds = 0u64;
    while let Some(Reverse((coord, k, pos))) = heap.pop() {
        let e = streams[k][pos];
        match out.last_mut() {
            Some(last) if last.coord == coord => {
                last.value += e.value;
                adds += 1;
            }
            _ => out.push(e),
        }
    }
    (out, adds)
}

/// Strategy: a random matrix with shape <= 24x24, from the shared
/// `gen::arb` test-support module (zeros pruned, duplicates folded).
fn small_matrix() -> impl Strategy<Value = Csr> {
    arb::csr(23, 23, 60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_step_equals_sorted_union(a in sorted_stream(), b in sorted_stream()) {
        let merged = merge_step(&a, &b);
        let mut expected: Vec<u64> = a.iter().chain(&b).map(|i| i.coord).collect();
        expected.sort_unstable();
        let got: Vec<u64> = merged.iter().map(|i| i.coord).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn streaming_mergers_agree(a in sorted_stream(), b in sorted_stream(), n in 1usize..8) {
        let flat = ComparatorMerger::new(n).merge(&a, &b);
        let chunk = (1..=n).rev().find(|d| n % d == 0 && *d * *d <= n * 2).unwrap_or(1);
        let hier = HierarchicalMerger::new(n, chunk).merge(&a, &b);
        prop_assert_eq!(flat, hier);
    }

    #[test]
    fn merged_output_is_sorted(a in sorted_stream(), b in sorted_stream()) {
        let out = ComparatorMerger::new(4).merge(&a, &b);
        prop_assert!(item::is_sorted(&out));
        prop_assert_eq!(out.len(), a.len() + b.len());
    }

    #[test]
    fn condensing_partitions_the_matrix(m in small_matrix()) {
        let view = CondensedView::new(&m);
        let mut covered = 0usize;
        for j in 0..view.num_cols() {
            for e in view.col(j) {
                prop_assert_eq!(m.get(e.row as usize, e.orig_col as usize), Some(e.value));
                covered += 1;
            }
        }
        prop_assert_eq!(covered, m.nnz());
    }

    #[test]
    fn huffman_is_minimal_among_schedulers(
        weights in vec(1u64..100, 2..30),
        ways in 2usize..8,
        seed in 0u64..1000,
    ) {
        let h = MergePlan::build(SchedulerKind::Huffman, &weights, ways);
        let s = MergePlan::build(SchedulerKind::Sequential, &weights, ways);
        let r = MergePlan::build(SchedulerKind::Random(seed), &weights, ways);
        h.validate();
        s.validate();
        r.validate();
        prop_assert!(h.estimated_total_weight() <= s.estimated_total_weight());
        prop_assert!(h.estimated_total_weight() <= r.estimated_total_weight());
    }

    #[test]
    fn kway_merge_fold_matches_heap_reference(streams in vec(sorted_dup_stream(), 0..6)) {
        let refs: Vec<&[MergeItem]> = streams.iter().map(|s| s.as_slice()).collect();
        let (expected, expected_adds) = reference_merge_fold(&refs);

        let (out, adds) = kway_merge_fold(&refs);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(adds, expected_adds);

        // The `_into` variant agrees and fully replaces prior contents.
        let mut reused = vec![MergeItem { coord: 999, value: 9.9 }; 3];
        let adds_into = kway_merge_fold_into(&refs, &mut reused);
        prop_assert_eq!(&reused, &expected);
        prop_assert_eq!(adds_into, expected_adds);

        // Folded output: strictly sorted, one element per merged-in
        // duplicate fewer than the inputs, zeros kept (not eliminated).
        prop_assert!(item::is_sorted_unique(&out));
        let total: usize = streams.iter().map(|s| s.len()).sum();
        prop_assert_eq!(out.len() as u64, total as u64 - adds);
    }

    #[test]
    fn kway_merge_fold_keeps_explicit_zeros(coords in vec(0u64..40, 1..20)) {
        // Two streams with identical coordinates and cancelling values:
        // every fold produces an exact zero, and the zero stays explicit
        // (zero elimination is the engine's separate stage).
        let mut cs = coords;
        cs.sort_unstable();
        cs.dedup();
        let pos: Vec<MergeItem> = cs.iter().map(|&c| MergeItem { coord: c, value: 2.5 }).collect();
        let neg: Vec<MergeItem> = cs.iter().map(|&c| MergeItem { coord: c, value: -2.5 }).collect();
        let mut out = Vec::new();
        let adds = kway_merge_fold_into(&[&pos, &neg], &mut out);
        prop_assert_eq!(adds as usize, cs.len());
        prop_assert_eq!(out.len(), cs.len());
        prop_assert!(out.iter().all(|e| e.value == 0.0));
        prop_assert_eq!(out.iter().map(|e| e.coord).collect::<Vec<_>>(), cs);
    }

    #[test]
    fn simulator_matches_gustavson(pair in arb::spgemm_pair(24, 60, arb::ValueClass::SmallInt)) {
        let (a, b) = pair;
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &b);
        let reference = algo::gustavson(&a, &b);
        prop_assert!(report.result().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn csr_round_trips(m in small_matrix()) {
        prop_assert_eq!(m.to_coo().to_csr(), m.clone());
        prop_assert_eq!(m.to_csc().to_csr(), m.clone());
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let text = sparch::sparse::mm::write_string(&m.to_coo());
        let parsed = sparch::sparse::mm::read_str(&text).unwrap();
        prop_assert_eq!(parsed.to_csr(), m);
    }

    #[test]
    fn software_algorithms_cross_agree(pair in arb::spgemm_pair(24, 60, arb::ValueClass::SmallInt)) {
        let (a, b) = pair;
        let g = algo::gustavson(&a, &b);
        prop_assert!(algo::hash_spgemm(&a, &b).approx_eq(&g, 1e-9));
        prop_assert!(algo::heap_spgemm(&a, &b).approx_eq(&g, 1e-9));
        prop_assert!(algo::sort_merge(&a, &b).approx_eq(&g, 1e-9));
        prop_assert!(algo::outer_product(&a, &b).approx_eq(&g, 1e-9));
        prop_assert!(algo::inner_product(&a, &b).approx_eq(&g, 1e-9));
    }

    #[test]
    fn traffic_is_internally_consistent(a in small_matrix()) {
        let sq = {
            // make it square so A x A works
            let n = a.rows().max(a.cols());
            let mut coo = Coo::new(n, n);
            for (r, c, v) in a.iter() { coo.push(r, c, v); }
            coo.to_csr()
        };
        let report = SpArchSim::new(SpArchConfig::default().with_tree_layers(2)).run(&sq, &sq);
        let t = &report.traffic;
        prop_assert_eq!(t.total_bytes(), t.read_bytes() + t.write_bytes());
        // Every spilled partial is read back exactly once.
        prop_assert_eq!(
            t.bytes(sparch::mem::TrafficCategory::PartialWrite),
            t.bytes(sparch::mem::TrafficCategory::PartialRead)
        );
    }
}

mod more_properties {
    use super::*;
    use sparch::core::prefetch::{PrefetchConfig, ReplacementPolicy, RowPrefetcher};
    use sparch::engine::ZeroEliminator;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn zero_eliminator_equals_filter(
            values in vec(prop_oneof![Just(0.0f64), (1u32..100).prop_map(|v| v as f64)], 0..64),
            width in 1usize..16,
        ) {
            let input: Vec<MergeItem> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| MergeItem { coord: i as u64, value: v })
                .collect();
            let expected: Vec<f64> = values.iter().copied().filter(|&v| v != 0.0).collect();
            let mut z = ZeroEliminator::new(width);
            let got: Vec<f64> = z.eliminate(&input).iter().map(|i| i.value).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prefetcher_traffic_is_conserved(
            accesses in vec(0u32..32, 1..120),
            lines in 1usize..32,
            lookahead in 1usize..64,
        ) {
            let b = sparch::sparse::gen::uniform_random(32, 32, 32 * 4, 9);
            let cfg = PrefetchConfig {
                enabled: true,
                lines,
                line_elems: 4,
                lookahead,
                fetchers: 16,
                policy: ReplacementPolicy::Belady,
            };
            let mut p = RowPrefetcher::new(&b, &cfg, accesses.clone());
            let dram = p.run_to_end();
            let stats = *p.stats();
            // Conservation: hits + misses = requests; DRAM never exceeds
            // the no-buffer cost and never undercuts the distinct-rows cost.
            prop_assert_eq!(stats.line_hits + stats.line_misses, stats.line_requests);
            prop_assert_eq!(stats.dram_bytes, dram);
            let worst: u64 = accesses
                .iter()
                .map(|&r| b.row_nnz(r as usize) as u64 * 12)
                .sum();
            prop_assert!(dram <= worst);
            let distinct: std::collections::HashSet<u32> = accesses.iter().copied().collect();
            let best: u64 = distinct
                .iter()
                .map(|&r| b.row_nnz(r as usize) as u64 * 12)
                .sum();
            prop_assert!(dram >= best, "dram {} below compulsory {}", dram, best);
        }

        #[test]
        fn belady_beats_or_ties_lru_hit_rate(
            accesses in vec(0u32..24, 10..150),
            lines in 2usize..16,
        ) {
            let b = sparch::sparse::gen::uniform_random(24, 24, 24 * 4, 5);
            let run = |policy| {
                let cfg = PrefetchConfig {
                    enabled: true,
                    lines,
                    line_elems: 8,
                    lookahead: 4096, // window covers the whole sequence
                    fetchers: 16,
                    policy,
                };
                let mut p = RowPrefetcher::new(&b, &cfg, accesses.clone());
                p.run_to_end();
                p.stats().line_hits
            };
            let belady = run(ReplacementPolicy::Belady);
            let lru = run(ReplacementPolicy::Lru);
            prop_assert!(
                belady >= lru,
                "Belady hits {} below LRU {} for {:?}", belady, lru, accesses
            );
        }

        #[test]
        fn huffman_internal_weight_lower_bound(
            weights in vec(1u64..50, 2..20),
            ways in 2usize..6,
        ) {
            // Internal weight can never be below the root alone (sum of
            // leaves) and never above sum * rounds.
            let plan = MergePlan::build(SchedulerKind::Huffman, &weights, ways);
            let total: u64 = weights.iter().sum();
            prop_assert!(plan.estimated_internal_weight() >= total);
            prop_assert!(
                plan.estimated_internal_weight() <= total * plan.rounds.len() as u64
            );
        }
    }
}
