//! Offline stand-in for `rand_chacha`.
//!
//! Implements the actual ChaCha8 stream cipher keystream (D. J. Bernstein's
//! ChaCha with 8 rounds) as an RNG, seeded exactly like `rand_core`'s
//! `seed_from_u64` (SplitMix64 expansion). Deterministic across platforms.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher key as eight little-endian words.
    key: [u32; 8],
    /// Block counter (low word) plus nonce words, all zero-initialised.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word to hand out from `block` (16 ⇒ generate a new block).
    word_pos: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_key_keystream_nontrivial() {
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let words: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert_eq!(words.len(), 8);
    }
}
