//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (see `vendor/serde`) without depending on `syn`/`quote`, which are
//! unavailable in the no-network build container. The parser walks the raw
//! `proc_macro::TokenStream` and supports the shapes this workspace uses:
//!
//! * structs with named fields (plus unit structs),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics, tuple structs and `#[serde(...)]` attributes are not supported;
//! deriving on such an item is a compile error rather than a silent
//! misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct (empty vec ⇒ unit struct).
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!("::serde::Json::Obj(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(&name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => deserialize_struct_body(&name, fields),
        Shape::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::Json) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}

fn serialize_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{ty}::{name} => ::serde::Json::Str(\"{name}\".to_string()),")
        }
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_json({b})"))
                .collect();
            let payload = if *n == 1 {
                items[0].clone()
            } else {
                format!("::serde::Json::Arr(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{ty}::{name}({binds}) => ::serde::Json::Obj(::std::vec![(\"{name}\".to_string(), {payload})]),",
                binds = binds.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"))
                .collect();
            format!(
                "{ty}::{name} {{ {binds} }} => ::serde::Json::Obj(::std::vec![(\"{name}\".to_string(), ::serde::Json::Obj(::std::vec![{}]))]),",
                pairs.join(", ")
            )
        }
    }
}

fn field_extraction(ty: &str, source: &str, f: &str) -> String {
    format!(
        "{f}: match {source}.iter().find(|(k, _)| k == \"{f}\") {{\n\
             Some((_, fv)) => ::serde::Deserialize::from_json(fv)?,\n\
             None => return Err(::serde::Error::new(\"missing field `{f}` in {ty}\")),\n\
         }}"
    )
}

fn deserialize_struct_body(name: &str, fields: &[String]) -> String {
    if fields.is_empty() {
        return format!("Ok({name})");
    }
    let extractions: Vec<String> = fields
        .iter()
        .map(|f| field_extraction(name, "obj", f))
        .collect();
    format!(
        "let obj = v.as_obj().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n\
         Ok({name} {{ {} }})",
        extractions.join(", ")
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Tuple(n) if *n == 1 => Some(format!(
                "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_json(payload)?)),",
                vn = v.name
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_json(arr.get({i}).ok_or_else(|| ::serde::Error::new(\"variant tuple too short\"))?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                         let arr = payload.as_arr().ok_or_else(|| ::serde::Error::new(\"expected array payload\"))?;\n\
                         return Ok({name}::{vn}({}));\n\
                     }}",
                    items.join(", "),
                    vn = v.name
                ))
            }
            VariantKind::Struct(fields) => {
                let extractions: Vec<String> = fields
                    .iter()
                    .map(|f| field_extraction(name, "fields_obj", f))
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                         let fields_obj = payload.as_obj().ok_or_else(|| ::serde::Error::new(\"expected object payload\"))?;\n\
                         return Ok({name}::{vn} {{ {} }});\n\
                     }}",
                    extractions.join(", "),
                    vn = v.name
                ))
            }
        })
        .collect();
    format!(
        "if let Some(tag) = v.as_str() {{\n\
             match tag {{ {unit} _ => {{}} }}\n\
         }}\n\
         if let Some(obj) = v.as_obj() {{\n\
             if let Some((tag, payload)) = obj.first() {{\n\
                 match tag.as_str() {{ {tagged} _ => {{}} }}\n\
             }}\n\
         }}\n\
         Err(::serde::Error::new(\"unknown variant for {name}\"))",
        unit = unit_arms.join(" "),
        tagged = tagged_arms.join(" "),
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    // Generic parameters are not supported; fail loudly if present.
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Struct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Struct(Vec::new())),
            _ => panic!("serde_derive: tuple struct `{name}` is not supported"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            _ => panic!("serde_derive: malformed enum `{name}`"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Splits a token sequence at commas that sit outside nested groups *and*
/// outside `<...>` generic argument lists.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level_commas(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                None => VariantKind::Unit,
                // `Variant = 3` style discriminants: treat as unit.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                other => panic!("serde_derive: unexpected token after variant: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}
