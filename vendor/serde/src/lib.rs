//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal serialization framework under the same crate name. It keeps the
//! parts of serde's surface this repository actually uses:
//!
//! * `Serialize` / `Deserialize` traits (JSON-backed, via the [`Json`]
//!   intermediate value),
//! * `#[derive(Serialize, Deserialize)]` for structs with named fields and
//!   for enums with unit, newtype and struct variants (externally tagged,
//!   matching serde's default representation),
//! * impls for the primitive types, `String`, `Option`, `Vec`, fixed-size
//!   arrays, tuples and string-keyed maps.
//!
//! The sibling `serde_json` shim provides `to_string`, `to_string_pretty`
//! and `from_str` on top of these traits. Round-tripping through this pair
//! is lossless for every type the workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Generic JSON value — the intermediate representation every
/// `Serialize`/`Deserialize` impl goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (kept exact; never routed through `f64`).
    U64(u64),
    /// Negative integer (kept exact; never routed through `f64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Borrows the object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted to a [`Json`] value.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// A type that can be reconstructed from a [`Json`] value.
pub trait Deserialize: Sized {
    /// Reconstructs a value from JSON, or explains why it can't be.
    fn from_json(v: &Json) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let n = match *v {
                    Json::U64(n) => n,
                    Json::I64(n) if n >= 0 => n as u64,
                    Json::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let n = *self as i64;
                if n >= 0 { Json::U64(n as u64) } else { Json::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let n = match *v {
                    Json::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::new("integer out of i64 range"))?,
                    Json::I64(n) => n,
                    Json::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match *v {
            Json::F64(f) => Ok(f),
            Json::U64(n) => Ok(n as f64),
            Json::I64(n) => Ok(n as f64),
            Json::Null => Ok(f64::NAN),
            _ => Err(Error::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, Error> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match *v {
            Json::Bool(b) => Ok(b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}
impl Serialize for std::path::PathBuf {
    /// Paths travel as strings; non-UTF-8 components serialize lossily.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string_lossy().into_owned())
    }
}
impl Deserialize for std::path::PathBuf {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| Error::new("expected path string"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Json) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_json(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::new("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        T::from_json(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| Error::new("expected tuple array"))?;
                let mut it = items.iter();
                Ok(($(
                    $t::from_json(it.next().ok_or_else(|| Error::new("tuple too short"))?)?,
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort keys so serialization is deterministic.
        let mut pairs: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(pairs)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
