//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this crate provides the
//! small slice of criterion's API the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, `iter` —
//! backed by a plain wall-clock harness: a short warm-up, then a fixed
//! number of timed samples, reporting median ns/iter (and derived
//! throughput) on stdout. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group, e.g. `flat/16`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median duration of one iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond, so cheap routines are not all timer noise.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut samples: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                start.elapsed() / iters_per_sample as u32
            })
            .collect();
        samples.sort_unstable();
        self.elapsed_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no externally provided input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        report(
            &self.name,
            &id.id,
            bencher.elapsed_per_iter,
            self.throughput,
        );
        let _ = &self.criterion;
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(
            &self.name,
            &id.id,
            bencher.elapsed_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group (for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let ns = per_iter.as_nanos().max(1);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{group}/{id}: {ns} ns/iter{rate}");
}

/// Benchmark driver. One instance is shared by every function named in
/// [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("base", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
