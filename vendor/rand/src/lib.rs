//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`),
//! uniform sampling over integer and float ranges, and
//! `seq::SliceRandom::{shuffle, choose}` — the surface this workspace uses.
//! Integer ranges sample by rejection so results are unbiased.

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_below(rng, (self.end as $wide).wrapping_sub(self.start as $wide))
                    .wrapping_add(self.start as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                sample_below(rng, span).wrapping_add(lo as $wide) as $t
            }
        }
    )*};
}
impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

/// Unbiased uniform draw from `[0, bound)` by rejection sampling.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffle/choose extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
