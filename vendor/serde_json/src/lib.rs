//! Offline stand-in for `serde_json`, built on the vendored `serde` shim.
//!
//! Provides `to_string`, `to_string_pretty`, `to_value`, `from_str` and a
//! re-export of the [`Value`] type. The emitted text is standard JSON;
//! integers are kept exact (never routed through `f64`), and non-finite
//! floats serialize as `null` like the real `serde_json`.

pub use serde::Error;
pub use serde::Json as Value;

use serde::{Deserialize, Json, Serialize};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value to a generic [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Reconstructs a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_json(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a decimal point; keep
                // one so the value re-parses as a float, matching serde_json.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => write_seq(
            items.iter(),
            items.len(),
            '[',
            ']',
            out,
            indent,
            depth,
            |item, out, indent, depth| {
                write_json(item, out, indent, depth);
            },
        ),
        Json::Obj(pairs) => write_seq(
            pairs.iter(),
            pairs.len(),
            '{',
            '}',
            out,
            indent,
            depth,
            |(k, v), out, indent, depth| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(v, out, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let scalar = match code {
                                // High surrogate: a \uDC00..\uDFFF escape
                                // must follow; combine into one scalar.
                                0xd800..=0xdbff => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(Error::new("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                                }
                                0xdc00..=0xdfff => {
                                    return Err(Error::new("unpaired low surrogate"))
                                }
                                c => c,
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte onward.
                    let s = &self.bytes[self.pos - 1..];
                    let c_len = utf8_len(b);
                    let chunk = s
                        .get(..c_len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos += c_len - 1;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("bad \\u escape"))
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_pair_escapes_parse() {
        let s: String = from_str(r#""😀""#).unwrap();
        assert_eq!(s, "\u{1f600}");
    }

    #[test]
    fn unpaired_surrogates_rejected() {
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn unicode_string_round_trips() {
        let original = "naïve — \u{1f600} ok".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn integers_stay_exact() {
        let n = u64::MAX;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }
}
