//! Offline stand-in for `rand_core`: the `RngCore` / `SeedableRng` traits
//! with the subset of the real API this workspace uses.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (e.g. `[u8; 32]` for ChaCha).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it through SplitMix64 the way
    /// the real `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
