//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], `prop_oneof!`, and the
//! `proptest!` macro with `#![proptest_config(...)]`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! ChaCha8 seed (fully deterministic, no `PROPTEST_*` env handling), and
//! failing cases are **not shrunk** — the assertion failure reports the
//! raw generated values instead.

use std::ops::{Range, RangeInclusive};

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies while generating a case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the deterministic per-test RNG.
    pub fn new(seed: u64) -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Unbiased draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error type for test-case bodies (`return Ok(())` / `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result alias for test-case bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy behind a uniform type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `len`, then that many
    /// elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `arg in strategy` binding is drawn fresh
/// for every case; the body may `return Ok(())` to skip a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed differs per test (by name) but is stable across runs.
            let seed = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!("property {} failed at case {}: {:?}", stringify!($name), case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}
