//! Transitive closure by repeated boolean squaring — the paper motivates
//! SpGEMM with "grammar parsing" (ref. 11) (Penn: transitive closure of sparse
//! matrices over closed semirings) and searching algorithms (refs. 8, 9).
//!
//! `reach = I + A + A² + A⁴ + ...`: squaring the reachability matrix
//! doubles path lengths, so `ceil(log2 diameter)` SpGEMMs close the
//! graph. Each squaring runs on the SpArch simulator; the boolean
//! saturation (clamping values to 1) runs in software.
//!
//! ```text
//! cargo run --release --example transitive_closure
//! ```

use sparch::core::{SpArchConfig, SpArchSim};
use sparch::sparse::{gen, linalg, Coo, Csr};

/// Boolean-saturates a matrix: any positive value becomes exactly 1.
fn saturate(m: &Csr) -> Csr {
    linalg::map_values(&linalg::prune(m, f64::MIN_POSITIVE), |_| 1.0)
}

/// Adds the identity so paths of length zero are included.
fn with_identity(m: &Csr) -> Csr {
    saturate(&linalg::add(m, &Csr::identity(m.rows())))
}

fn main() {
    // A sparse random digraph: a few long chains plus random edges keeps
    // the diameter interesting.
    let n = 1024;
    let mut coo = Coo::new(n, n);
    for i in 0..(n as u32 - 1) {
        if i % 7 != 0 {
            coo.push(i, i + 1, 1.0); // chain segments
        }
    }
    for (r, c, _) in gen::uniform_random(n, n, n / 2, 5).iter() {
        coo.push(r, c, 1.0);
    }
    coo.sort_dedup();
    let graph = saturate(&coo.to_csr());
    println!("digraph: {} vertices, {} edges", n, graph.nnz());

    let sim = SpArchSim::new(SpArchConfig::default());
    let mut reach = with_identity(&graph);
    let mut total_cycles = 0u64;
    for step in 1..=11 {
        let report = sim.run(&reach, &reach);
        total_cycles += report.perf.cycles;
        let next = saturate(report.result());
        let grew = next.nnz() > reach.nnz();
        println!(
            "squaring {step:2}: reachable pairs {:8} | {:.2} GFLOP/s, {:.2} MB DRAM, {} rounds",
            next.nnz(),
            report.perf.gflops,
            report.dram_mb(),
            report.perf.rounds
        );
        reach = next;
        if !grew {
            println!("closure reached after {step} squarings (diameter < 2^{step})");
            break;
        }
    }
    println!(
        "\nclosure density {:.2}%, total accelerator time {:.3} ms",
        reach.density() * 100.0,
        total_cycles as f64 / 1e6
    );

    // Spot-check: every direct edge must be in the closure.
    for (r, c, _) in graph.iter().take(2000) {
        assert_eq!(reach.get(r as usize, c as usize), Some(1.0));
    }
    println!("spot-check passed: closure contains all direct edges");
}
