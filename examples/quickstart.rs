//! Quickstart: simulate one sparse matrix product on SpArch and inspect
//! the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparch::prelude::*;
use sparch::sparse::{algo, gen};

fn main() {
    // A power-law graph (R-MAT, Graph 500 parameters), squared — the
    // canonical SpGEMM workload of the paper's evaluation.
    let a = gen::rmat_graph500(2048, 8, 42);
    println!(
        "input: {}x{} matrix, {} non-zeros (density {:.4}%)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.density() * 100.0
    );

    // Simulate C = A x A on the default (Table I) configuration.
    let sim = SpArchSim::new(SpArchConfig::default());
    let report = sim.run(&a, &a);

    // The simulated result is exact — verify against a software reference.
    let reference = algo::gustavson(&a, &a);
    assert!(
        report.result().approx_eq(&reference, 1e-9),
        "results must match"
    );
    println!(
        "result verified against Gustavson's algorithm: {} non-zeros",
        reference.nnz()
    );

    println!("\n--- SpArch report ---");
    println!(
        "partial matrices (condensed columns): {}",
        report.partial_matrices
    );
    println!(
        "merge rounds:                         {}",
        report.perf.rounds
    );
    println!(
        "multiplications:                      {}",
        report.perf.multiplies
    );
    println!(
        "cycles @ 1 GHz:                       {}",
        report.perf.cycles
    );
    println!(
        "throughput:                           {:.2} GFLOP/s",
        report.perf.gflops
    );
    println!(
        "bandwidth utilization:                {:.1}%",
        report.perf.bandwidth_utilization * 100.0
    );
    println!(
        "DRAM traffic:                         {:.2} MB",
        report.dram_mb()
    );
    println!(
        "prefetch buffer hit rate:             {:.1}%",
        report.prefetch.hit_rate() * 100.0
    );
    println!(
        "energy:                               {:.3} mJ",
        report.energy_total() * 1e3
    );
    println!(
        "energy efficiency:                    {:.3} nJ/FLOP",
        report.nj_per_flop()
    );

    // Compare with the OuterSPACE model, the paper's main baseline.
    let outerspace = OuterSpaceModel::default().run(&a, &a);
    println!("\n--- vs OuterSPACE ---");
    println!(
        "speedup: {:.2}x   energy saving: {:.2}x   DRAM reduction: {:.2}x",
        report.perf.gflops / outerspace.gflops,
        outerspace.energy_j / report.energy_total(),
        outerspace.traffic.total_bytes() as f64 / report.traffic.total_bytes() as f64
    );
}
