//! Triangle counting via SpGEMM — one of the paper's motivating
//! applications ("triangle counting", §I ref. 6).
//!
//! The triangle count of an undirected graph with adjacency matrix `A` is
//! `Σ (A·A) ∘ A / 6`. The expensive step is the sparse product `A·A`,
//! which we run on the SpArch simulator; the Hadamard mask and reduction
//! run in software.
//!
//! ```text
//! cargo run --release --example triangle_counting
//! ```

use sparch::core::{SpArchConfig, SpArchSim};
use sparch::sparse::{gen, linalg, Coo, Csr};

/// Symmetrizes a directed graph and drops self-loops, producing a 0/1
/// adjacency matrix.
fn symmetrize(g: &Csr) -> Csr {
    let mut coo = Coo::new(g.rows(), g.cols());
    for (r, c, _) in g.iter() {
        if r != c {
            coo.push(r, c, 1.0);
            coo.push(c, r, 1.0);
        }
    }
    coo.sort_dedup();
    // Duplicate folds summed values; reset them to 1.
    linalg::map_values(&coo.to_csr(), |_| 1.0)
}

fn main() {
    let sim = SpArchSim::new(SpArchConfig::default());
    for (name, n, degree, seed) in [
        ("small-world", 512usize, 8usize, 7u64),
        ("social-like", 2048, 12, 8),
        ("sparse-web", 4096, 4, 9),
    ] {
        let adj = symmetrize(&gen::rmat_graph500(n, degree, seed));

        // A·A on the accelerator.
        let report = sim.run(&adj, &adj);
        let a2 = report.result().clone();

        // Mask with A and reduce in software.
        let masked = linalg::hadamard(&a2, &adj);
        let triangles = (linalg::sum(&masked) / 6.0).round() as u64;

        // Cross-check with the pure software path.
        assert_eq!(triangles, linalg::count_triangles(&adj));

        println!(
            "{name:>12}: n = {n:5}, edges = {:7}, triangles = {triangles:8} | \
             accelerator: {:.2} GFLOP/s, {:.2} MB DRAM, {} merge rounds",
            adj.nnz() / 2,
            report.perf.gflops,
            report.dram_mb(),
            report.perf.rounds,
        );
    }
}
