//! Compressed-DNN inference — the paper's first motivating application
//! ("compressed deep neural networks", §I refs. 2-5).
//!
//! After magnitude pruning, both the weight matrices and (with ReLU) the
//! activation matrices are sparse, so every layer is a SpGEMM
//! `A_{l+1} = relu(W_l x A_l)`. This example pushes a batch of sparse
//! activations through a three-layer pruned MLP on the SpArch simulator
//! and reports per-layer accelerator statistics.
//!
//! ```text
//! cargo run --release --example pruned_dnn
//! ```

use sparch::core::{SpArchConfig, SpArchSim};
use sparch::sparse::{algo, gen, linalg, Csr};

/// Applies ReLU (drops negative values) to keep activations sparse.
fn relu(m: &Csr) -> Csr {
    linalg::prune(&linalg::map_values(m, |v| v.max(0.0)), f64::MIN_POSITIVE)
}

fn main() {
    // Block-pruned weights (structured sparsity, as produced by pruning
    // frameworks): three layers of a 1024-768-512-256 MLP at ~10% block
    // density.
    let w1 = gen::block_sparse(768, 1024, 16, 0.10, 1);
    let w2 = gen::block_sparse(512, 768, 16, 0.10, 2);
    let w3 = gen::block_sparse(256, 512, 16, 0.12, 3);

    // A batch of 256 sparse input activations (~5% dense).
    let batch = 256;
    let mut activations = gen::uniform_random(1024, batch, 1024 * batch / 20, 9);

    let sim = SpArchSim::new(SpArchConfig::default());
    println!("pruned MLP inference, batch = {batch}\n");
    let mut total_cycles = 0u64;
    let mut total_energy = 0.0f64;
    for (layer, w) in [("fc1", &w1), ("fc2", &w2), ("fc3", &w3)] {
        let report = sim.run(w, &activations);

        // Verify against the software reference before activating.
        let reference = algo::gustavson(w, &activations);
        assert!(report.result().approx_eq(&reference, 1e-9));

        let pre = report.result().clone();
        activations = relu(&pre);
        total_cycles += report.perf.cycles;
        total_energy += report.energy_total();
        println!(
            "{layer}: W {}x{} ({:5.2}% dense) -> out ({:5.2}% dense), kept nnz {:6} | \
             {:.2} GFLOP/s, {:.2} MB DRAM, hit rate {:.0}%",
            w.rows(),
            w.cols(),
            w.density() * 100.0,
            report.result().density() * 100.0,
            activations.nnz(),
            report.perf.gflops,
            report.dram_mb(),
            report.prefetch.hit_rate() * 100.0,
        );
    }
    println!(
        "\nnetwork total: {:.3} ms at 1 GHz, {:.3} mJ",
        total_cycles as f64 / 1e6,
        total_energy * 1e3
    );
}
