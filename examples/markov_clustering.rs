//! Markov clustering (MCL) — another motivating application of the paper
//! ("Markov clustering", §I ref. 7).
//!
//! MCL alternates *expansion* (squaring the column-stochastic transition
//! matrix — a SpGEMM, run here on the SpArch simulator), *inflation*
//! (element-wise power + column re-normalization) and *pruning* of tiny
//! entries, until the matrix converges to cluster attractors.
//!
//! ```text
//! cargo run --release --example markov_clustering
//! ```

use sparch::core::{SpArchConfig, SpArchSim};
use sparch::sparse::{gen, linalg, Coo, Csr};

/// Builds a graph of `k` planted clusters with dense intra-cluster and
/// sparse inter-cluster connectivity.
fn planted_clusters(k: usize, per_cluster: usize, seed: u64) -> Csr {
    let n = k * per_cluster;
    let mut coo = Coo::new(n, n);
    let intra = gen::uniform_random(per_cluster, per_cluster, per_cluster * 6, seed);
    for cluster in 0..k {
        let base = (cluster * per_cluster) as u32;
        for (r, c, _) in intra.iter() {
            coo.push(base + r, base + c, 1.0);
        }
    }
    // A few random bridges between clusters.
    let bridges = gen::uniform_random(n, n, n / 4, seed + 1);
    for (r, c, _) in bridges.iter() {
        coo.push(r, c, 1.0);
    }
    // Self-loops stabilize MCL.
    for i in 0..n as u32 {
        coo.push(i, i, 1.0);
    }
    coo.sort_dedup();
    linalg::map_values(&coo.to_csr(), |_| 1.0)
}

/// Number of rows that act as attractors (hold a dominant entry) — a
/// proxy for the cluster count once MCL converges.
fn attractor_rows(m: &Csr) -> usize {
    (0..m.rows())
        .filter(|&r| {
            let (_, vals) = m.row(r);
            vals.iter().any(|&v| v > 0.5)
        })
        .count()
}

fn main() {
    let k = 8;
    let graph = planted_clusters(k, 64, 3);
    println!(
        "graph: {} vertices, {} edges, {k} planted clusters",
        graph.rows(),
        graph.nnz()
    );

    let sim = SpArchSim::new(SpArchConfig::default());
    let mut m = linalg::normalize_columns(&graph);
    let inflation = 2.0;
    let prune_threshold = 1e-4;

    for iteration in 1..=12 {
        // Expansion on the accelerator: M := M x M.
        let report = sim.run(&m, &m);
        let expanded = report.result().clone();

        // Inflation + pruning + re-normalization in software.
        let inflated = linalg::elementwise_power(&expanded, inflation);
        let normalized = linalg::normalize_columns(&inflated);
        let pruned = linalg::prune(&normalized, prune_threshold);
        let next = linalg::normalize_columns(&pruned);

        let delta: f64 = if next.nnz() == m.nnz() {
            next.values()
                .iter()
                .zip(m.values())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        } else {
            1.0
        };
        println!(
            "iter {iteration:2}: nnz = {:6}, attractors = {:4}, sim {:.2} GFLOP/s, {:.2} MB DRAM",
            next.nnz(),
            attractor_rows(&next),
            report.perf.gflops,
            report.dram_mb(),
        );
        m = next;
        if delta < 1e-6 {
            println!("converged after {iteration} iterations");
            break;
        }
    }
    let clusters = attractor_rows(&m);
    println!("\nfinal attractor rows: {clusters} (planted: {k})");
}
