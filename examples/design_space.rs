//! Mini design-space exploration: how the merge-tree depth, merger width
//! and prefetch buffer change performance, DRAM traffic and area on one
//! workload — the §III-D methodology in miniature.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use sparch::core::{SpArchConfig, SpArchSim};
use sparch::sparse::gen;

fn main() {
    let a = gen::rmat_graph500(4096, 8, 21);
    println!(
        "workload: rmat n={} deg=8, {} nnz; sweeping one dimension at a time\n",
        a.rows(),
        a.nnz()
    );
    println!(
        "{:<38} {:>8} {:>10} {:>10} {:>9}",
        "configuration", "GFLOPS", "DRAM MB", "area mm2", "rounds"
    );

    let run = |label: String, config: SpArchConfig| {
        let report = SpArchSim::new(config).run(&a, &a);
        println!(
            "{label:<38} {:>8.2} {:>10.2} {:>10.2} {:>9}",
            report.perf.gflops,
            report.dram_mb(),
            report.area.total(),
            report.perf.rounds
        );
    };

    run("default (Table I)".into(), SpArchConfig::default());

    for layers in [2usize, 4, 7] {
        run(
            format!("merge tree: {layers} layers ({} ways)", 1 << layers),
            SpArchConfig::default().with_tree_layers(layers),
        );
    }
    for width in [4usize, 8] {
        run(
            format!("merger width: {width}x{width}"),
            SpArchConfig::default().with_merger_width(width),
        );
    }
    for (lines, elems) in [(256usize, 48usize), (1024, 24), (2048, 48)] {
        let mut c = SpArchConfig::default();
        c.prefetch.lines = lines;
        c.prefetch.line_elems = elems;
        run(format!("prefetch buffer: {lines}x{elems}"), c);
    }
    run(
        "no prefetcher".into(),
        SpArchConfig::default().without_prefetcher(),
    );
    run(
        "no condensing".into(),
        SpArchConfig::default().without_condensing(),
    );
}
