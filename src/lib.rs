//! # SpArch — Efficient Architecture for Sparse Matrix Multiplication
//!
//! A full-system Rust reproduction of *SpArch: Efficient Architecture for
//! Sparse Matrix Multiplication* (Zhang, Wang, Han, Dally — HPCA 2020).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`sparse`] — matrix formats, generators, software SpGEMM algorithms,
//! * [`mem`] — DRAM/HBM, FIFO/buffer and energy/area cost models,
//! * [`engine`] — comparator-array merger, merge tree, zero eliminator,
//! * [`core`] — the SpArch accelerator simulator (condensing, Huffman
//!   scheduler, row prefetcher, full pipeline), staged plan → prefetch →
//!   execute → writeback with reusable [`core::SimScratch`] buffers,
//! * [`exec`] — the parallel sharded execution layer ([`exec::ShardPool`],
//!   [`exec::Workload`], [`exec::ParallelRunner`]) for multi-core sweeps,
//! * [`obs`] — unified tracing and metrics ([`obs::Recorder`] span lanes
//!   feeding Chrome-trace export, counters/gauges/histograms; the report
//!   structs across stream/dist/serve derive from the same recorder),
//! * [`stream`] — the streaming out-of-core SpGEMM pipeline
//!   ([`stream::StreamingExecutor`]: panel-partitioned multiply,
//!   memory-budgeted Huffman-ordered partial merge, disk spill),
//! * [`dist`] — distributed panel sharding ([`dist::DistCoordinator`]:
//!   panel jobs shipped to shard worker processes over Unix sockets,
//!   heartbeat liveness, retry and straggler re-dispatch, bit-identical
//!   to the single-node streaming pipeline),
//! * [`serve`] — the request-serving layer ([`serve::SpgemmService`],
//!   adaptive backend dispatch, operand caching, batch reports),
//! * [`tune`] — the self-tuning loop ([`tune::KnobPlanner`] derives a
//!   full stream configuration from operand structure and a memory
//!   budget; [`tune::OnlineCalibration`] folds predicted-vs-measured
//!   step costs back into the serving layer's calibration table),
//! * [`baselines`] — the OuterSPACE model and software baseline proxies.
//!
//! # Quickstart
//!
//! ```
//! use sparch::prelude::*;
//!
//! // A small power-law matrix, squared on the accelerator.
//! let a = sparch::sparse::gen::rmat_graph500(256, 8, 42);
//! let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
//!
//! // The simulated result is exact: compare with a software reference.
//! let reference = sparch::sparse::algo::gustavson(&a, &a);
//! assert!(report.result().approx_eq(&reference, 1e-9));
//! println!("{} GFLOPS, {} MB DRAM traffic",
//!          report.perf.gflops, report.traffic.total_bytes() as f64 / 1e6);
//! ```

pub use sparch_baselines as baselines;
pub use sparch_core as core;
pub use sparch_dist as dist;
pub use sparch_engine as engine;
pub use sparch_exec as exec;
pub use sparch_mem as mem;
pub use sparch_obs as obs;
pub use sparch_serve as serve;
pub use sparch_sparse as sparse;
pub use sparch_stream as stream;
pub use sparch_tune as tune;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use sparch_baselines::outerspace::OuterSpaceModel;
    pub use sparch_core::{
        PrefetchConfig, SchedulerKind, SimReport, SimScratch, SpArchConfig, SpArchSim,
    };
    pub use sparch_dist::{DistConfig, DistCoordinator, DistReport};
    pub use sparch_engine::{Clock, Clocked, MergeItem, MergeTree, MergeTreeConfig};
    pub use sparch_exec::{FnWorkload, ParallelRunner, ShardPool, Workload};
    pub use sparch_obs::{MetricsSnapshot, Recorder, Stopwatch, Trace};
    pub use sparch_serve::{
        Backend, Batch, BatchReport, Calibration, DispatchPolicy, Request, ServiceConfig,
        SpgemmService,
    };
    pub use sparch_sparse::{Coo, Csc, Csr, CsrBuilder, Dense, Index, Triple, Value};
    pub use sparch_stream::{
        MemoryBudget, PanelBalance, SpillCodec, StageReport, StreamConfig, StreamReport,
        StreamingExecutor,
    };
    pub use sparch_tune::{BRows, KnobPlanner, OnlineCalibration, OperandStats, Plan};
}
