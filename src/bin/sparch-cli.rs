//! `sparch-cli` — run the SpArch simulator on real matrices.
//!
//! ```text
//! sparch-cli multiply --a matrix.mtx [--b other.mtx] [--verify] [--json out.json]
//! sparch-cli generate --kind rmat --n 4096 --degree 8 --out matrix.mtx
//! sparch-cli stats --a matrix.mtx
//! sparch-cli batch --file requests.json [--policy adaptive] [--threads N] [--json out.json]
//! sparch-cli stream --a matrix.mtx [--b other.mtx] [--budget-mb N] [--panels P|auto] \
//!     [--balance uniform|nnz] [--spill-codec raw|varint] [--threads T]
//! sparch-cli dist --a matrix.mtx [--b other.mtx] [--shards S] [--panels P|auto] \
//!     [--budget-mb N] [--verify] [--json out.json]
//! ```
//!
//! `multiply` simulates `A × B` (B defaults to A), printing the same
//! report the paper's evaluation measures: GFLOP/s, per-category DRAM
//! traffic, prefetch hit rate, energy breakdown. `generate` writes
//! synthetic workloads in Matrix Market format; `stats` prints the
//! structural quantities SpArch's performance depends on. `batch` runs a
//! JSON request file through the `sparch-serve` layer — adaptive backend
//! dispatch, operand caching, sharded execution — and prints the batch
//! report. `stream` multiplies through the out-of-core `sparch-stream`
//! pipeline: **both** operands are ingested panel by panel (neither is
//! ever materialized whole) and flow through the staged
//! reader → multiply → merge/spill dataflow; partials merge in Huffman
//! order under `--budget-mb`, spilling to a temp directory — raw or
//! delta+varint encoded — when they do not fit. With `--panels auto` (or
//! `--tune`) the pipeline knobs — panel count and balance, merge fan-in,
//! spill codec — are derived by the `sparch-tune` planner from the
//! operand's column histogram and the budget instead of taken from
//! flags; the result is bit-identical either way. `dist` runs the same
//! panel decomposition across a fleet of shard worker *processes*
//! (`sparch-dist-worker`, found next to this binary or via
//! `SPARCH_DIST_WORKER`) connected over Unix sockets, with heartbeat
//! liveness, retry and straggler re-dispatch — the result is
//! bit-identical to the single-node pipeline at every shard count.

use serde_json::Value;
use sparch::baselines::OuterSpaceModel;
use sparch::core::{SpArchConfig, SpArchSim};
use sparch::dist::{DistConfig, DistCoordinator};
use sparch::mem::TrafficCategory;
use sparch::obs::{chrome_trace_json, Recorder, Trace};
use sparch::serve::{Batch, Calibration, DispatchPolicy, ServiceConfig, SpgemmService};
use sparch::sparse::{algo, gen, mm, stats, Csr};
use sparch::stream::{MemoryBudget, StreamConfig, StreamingExecutor};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  sparch-cli multiply --a <mtx> [--b <mtx>] [--layers N] [--no-prefetch] \
         [--no-condense] [--verify] [--json <path>]\n  sparch-cli generate --kind \
         <rmat|uniform|poisson|banded> --n <N> [--degree D] [--seed S] --out <mtx>\n  \
         sparch-cli stats --a <mtx>\n  sparch-cli batch --file <requests.json> \
         [--policy adaptive|fixed:<backend>] [--threads N] [--reference-calibration] \
         [--tune] [--online-alpha A] [--json <path>] [--trace <path>]\n  \
         sparch-cli stream --a <mtx> [--b <mtx>] \
         [--budget-mb N] [--panels P|auto] [--tune] [--balance uniform|nnz] [--ways W] \
         [--spill-codec raw|varint] [--threads T] [--verify] [--json <path>] \
         [--trace <path>]\n  sparch-cli dist --a <mtx> [--b <mtx>] \
         [--shards S] [--panels P|auto] [--tune] [--budget-mb N] [--verify] \
         [--json <path>] [--trace <path>]\n  sparch-cli trace-check --file <trace.json> \
         --expect <name>[,<name>...]"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            eprintln!("unexpected argument {arg:?}");
            usage();
        }
    }
    flags
}

fn load(path: &str) -> Csr {
    match mm::read_file(path) {
        Ok(coo) => coo.to_csr(),
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The recorder a command runs with: enabled iff `--trace` was given.
fn recorder_for(flags: &HashMap<String, String>) -> Recorder {
    if flags.contains_key("trace") {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    }
}

/// Writes the Chrome trace-event export to the `--trace` path, if any.
fn write_trace(flags: &HashMap<String, String>, trace: &Trace) {
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, chrome_trace_json(trace)).expect("write trace");
        println!("trace written to {path} (load it in Perfetto or chrome://tracing)");
    }
}

fn cmd_multiply(flags: &HashMap<String, String>) -> ExitCode {
    let Some(a_path) = flags.get("a") else {
        usage()
    };
    let a = load(a_path);
    let b = flags.get("b").map(|p| load(p));
    let b = b.as_ref().unwrap_or(&a);

    let mut config = SpArchConfig::default();
    if let Some(layers) = flags.get("layers") {
        config = config.with_tree_layers(layers.parse().expect("--layers needs a number"));
    }
    if flags.contains_key("no-prefetch") {
        config = config.without_prefetcher();
    }
    if flags.contains_key("no-condense") {
        config = config.without_condensing();
    }

    let report = SpArchSim::new(config).run(&a, b);
    if flags.contains_key("verify") {
        let reference = algo::gustavson(&a, b);
        if report.result().approx_eq(&reference, 1e-9) {
            println!("verification: OK ({} non-zeros)", reference.nnz());
        } else {
            eprintln!("verification FAILED");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "A: {}x{}, {} nnz | B: {}x{}, {} nnz",
        a.rows(),
        a.cols(),
        a.nnz(),
        b.rows(),
        b.cols(),
        b.nnz()
    );
    println!("result: {} nnz", report.perf.output_nnz);
    println!(
        "partial matrices: {}, merge rounds: {}",
        report.partial_matrices, report.perf.rounds
    );
    println!(
        "cycles: {} ({:.3} ms @ 1 GHz)",
        report.perf.cycles,
        report.perf.seconds * 1e3
    );
    println!("throughput: {:.2} GFLOP/s", report.perf.gflops);
    println!(
        "bandwidth utilization: {:.1}%",
        report.perf.bandwidth_utilization * 100.0
    );
    println!(
        "prefetch hit rate: {:.1}%",
        report.prefetch.hit_rate() * 100.0
    );
    println!(
        "energy: {:.3} mJ ({:.3} nJ/FLOP)",
        report.energy_total() * 1e3,
        report.nj_per_flop()
    );
    println!("\nDRAM traffic ({:.2} MB total):", report.dram_mb());
    for cat in TrafficCategory::ALL {
        println!(
            "  {:>14}: {:.2} MB",
            cat.to_string(),
            report.traffic.bytes(cat) as f64 / 1e6
        );
    }
    let os = OuterSpaceModel::default().run(&a, b);
    println!(
        "\nvs OuterSPACE: {:.2}x speedup, {:.2}x less DRAM, {:.2}x energy saving",
        report.perf.gflops / os.gflops,
        os.traffic.total_bytes() as f64 / report.traffic.total_bytes() as f64,
        os.energy_j / report.energy_total()
    );

    if let Some(path) = flags.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("serialize"),
        )
        .expect("write json");
        println!("\nreport written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_generate(flags: &HashMap<String, String>) -> ExitCode {
    let kind = flags.get("kind").map(String::as_str).unwrap_or("rmat");
    let n: usize = flags
        .get("n")
        .map(|v| v.parse().expect("--n"))
        .unwrap_or(4096);
    let degree: usize = flags
        .get("degree")
        .map(|v| v.parse().expect("--degree"))
        .unwrap_or(8);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().expect("--seed"))
        .unwrap_or(42);
    let Some(out) = flags.get("out") else { usage() };
    let m = match kind {
        "rmat" => gen::rmat_graph500(n, degree, seed),
        "uniform" => gen::uniform_random(n, n, n * degree, seed),
        "poisson" => {
            let side = (n as f64).cbrt().round() as usize;
            gen::poisson3d(side, side, side)
        }
        "banded" => gen::banded(n, degree / 2, n, seed),
        other => {
            eprintln!("unknown --kind {other:?}");
            usage();
        }
    };
    mm::write_file(out, &m.to_coo()).expect("write matrix");
    println!(
        "wrote {}x{} matrix with {} nnz to {out}",
        m.rows(),
        m.cols(),
        m.nnz()
    );
    ExitCode::SUCCESS
}

fn cmd_stats(flags: &HashMap<String, String>) -> ExitCode {
    let Some(a_path) = flags.get("a") else {
        usage()
    };
    let a = load(a_path);
    let ms = stats::MatrixStats::of(&a);
    let ts = stats::TaskStats::of(&a, &a);
    println!("{}", serde_json::to_string_pretty(&ms).expect("serialize"));
    println!("{}", serde_json::to_string_pretty(&ts).expect("serialize"));
    ExitCode::SUCCESS
}

fn cmd_batch(flags: &HashMap<String, String>) -> ExitCode {
    let Some(file) = flags.get("file") else {
        usage()
    };
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batch = match Batch::from_json(&text) {
        Ok(batch) => batch,
        Err(e) => {
            eprintln!("failed to parse {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let policy = match flags.get("policy") {
        Some(p) => match p.parse::<DispatchPolicy>() {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => DispatchPolicy::Adaptive,
    };
    // `--reference-calibration` pins the identity table so repeated runs
    // (and runs on different machines) dispatch identically.
    let calibration = flags
        .contains_key("reference-calibration")
        .then(Calibration::reference);
    let threads = flags
        .get("threads")
        .map(|v| v.parse().expect("--threads needs a number"));

    let mut service = SpgemmService::new(ServiceConfig {
        policy,
        threads,
        calibration,
        // `--tune` plans out-of-core steps' knobs per task; `--online-alpha`
        // folds measured step costs back into the calibration table after
        // the batch (EWMA smoothing factor in (0, 1]).
        auto_tune: flags.contains_key("tune"),
        online_calibration: flags
            .get("online-alpha")
            .map(|v| v.parse().expect("--online-alpha needs a number in (0, 1]")),
        ..ServiceConfig::default()
    })
    .with_recorder(recorder_for(flags));
    let report = match service.serve(&batch) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("batch failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "served {} requests ({} multiply steps) on {} thread(s), policy {}",
        report.total_requests, report.total_steps, report.threads, report.policy
    );
    println!(
        "operand cache: {} hits / {} misses ({:.1}% hit rate)",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate * 100.0
    );
    println!(
        "total model-side work: {:.3e} units",
        report.total_model_cost
    );
    println!("wall: {:.3} s\n", report.wall_seconds);
    println!("backend            steps");
    for bs in &report.backend_steps {
        println!("{:>16} {:>7}", bs.backend, bs.steps);
    }

    if let Some(path) = flags.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("serialize"),
        )
        .expect("write json");
        println!("\nreport written to {path}");
    }
    write_trace(flags, &service.recorder().drain("serve"));
    ExitCode::SUCCESS
}

fn cmd_stream(flags: &HashMap<String, String>) -> ExitCode {
    let Some(a_path) = flags.get("a") else {
        usage()
    };
    let parse_num = |key: &str, default: usize| -> usize {
        flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} needs a number"))
            })
            .unwrap_or(default)
    };
    let b_path = flags.get("b").unwrap_or(a_path);
    let defaults = StreamConfig::default();
    let budget = flags
        .get("budget-mb")
        .map(|v| MemoryBudget::from_mb(v.parse().expect("--budget-mb needs a number of MiB")))
        .unwrap_or(defaults.budget);
    let threads = flags
        .get("threads")
        .map(|v| v.parse().expect("--threads needs a number"));
    let merge_workers = flags
        .get("merge-workers")
        .map(|v| v.parse().expect("--merge-workers needs a number"));
    let tuned =
        flags.get("panels").map(String::as_str) == Some("auto") || flags.contains_key("tune");
    let config = if tuned {
        // Derive the data knobs from the operand's structure: one
        // histogram pass over A's file, B priced at its average row fill
        // (only its declared entry count is known without a second scan).
        let stats = match sparch::tune::OperandStats::scan_file(a_path) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("failed to scan {a_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let b_nnz = match mm::read_row_panels(b_path, 1) {
            Ok(probe) => probe.declared_nnz() as u64,
            Err(e) => {
                eprintln!("failed to open {b_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let plan = sparch::tune::KnobPlanner::new(budget)
            .with_threads(threads.unwrap_or(1))
            .plan(&stats, &sparch::tune::BRows::Average { nnz: b_nnz });
        println!(
            "auto-tuned: {} panels ({} balance), {}-way merge, {} spill codec{}",
            plan.config.panels,
            plan.config.balance,
            plan.config.merge_ways,
            plan.config.spill_codec,
            if plan.budget_satisfied {
                ""
            } else {
                " (budget formula unachievable; best effort)"
            }
        );
        StreamConfig {
            threads,
            merge_workers,
            spill_dir: None,
            ..plan.config
        }
    } else {
        StreamConfig {
            budget,
            panels: parse_num("panels", defaults.panels).max(1),
            balance: flags
                .get("balance")
                .map(|v| {
                    v.parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2)
                    })
                })
                .unwrap_or(defaults.balance),
            merge_ways: parse_num("ways", defaults.merge_ways).max(2),
            spill_codec: flags
                .get("spill-codec")
                .map(|v| {
                    v.parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2)
                    })
                })
                .unwrap_or(defaults.spill_codec),
            threads,
            merge_workers,
            spill_dir: None,
        }
    };

    // Both operands stream panel by panel through the staged pipeline —
    // neither is ever materialized whole (--verify re-reads them whole
    // afterwards, outside the pipelined path). A's column split is
    // uniform or nnz-balanced (one extra histogram pass over the file);
    // B's row split mirrors A's ranges exactly.
    let a_reader = match config.balance {
        sparch::stream::PanelBalance::Uniform => mm::read_panels(a_path, config.panels),
        sparch::stream::PanelBalance::Nnz => mm::scan_col_nnz(a_path).and_then(|weights| {
            mm::PanelReader::open_with_ranges(
                a_path,
                sparch::sparse::panel_ranges_by_nnz(&weights, config.panels),
            )
        }),
    };
    let a_reader = match a_reader {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("failed to open {a_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (a_rows, inner_dim) = (a_reader.rows(), a_reader.cols());
    let b_probe = match mm::read_row_panels(b_path, 1) {
        Ok(probe) => probe,
        Err(e) => {
            eprintln!("failed to open {b_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (b_rows, b_cols) = (b_probe.rows(), b_probe.cols());
    if b_rows != inner_dim {
        eprintln!("shape mismatch: A is {a_rows}x{inner_dim} but B is {b_rows}x{b_cols}");
        return ExitCode::FAILURE;
    }
    let b_reader = match mm::RowPanelReader::open_with_ranges(b_path, a_reader.ranges().to_vec()) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("failed to open {b_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let executor = StreamingExecutor::new(config).with_recorder(recorder_for(flags));
    let to_csr = |item: Result<
        (std::ops::Range<usize>, sparch::sparse::Coo),
        sparch::sparse::SparseError,
    >| {
        item.map(|(range, coo)| (range, coo.to_csr()))
            .map_err(sparch::stream::StreamError::from)
    };
    let outcome = executor.multiply_streams(
        a_rows,
        inner_dim,
        b_cols,
        a_reader.map(to_csr),
        b_reader.map(to_csr),
    );
    let (c, report) = match outcome {
        Ok(result) => result,
        Err(e) => {
            eprintln!("streaming multiply failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if flags.contains_key("verify") {
        let a = load(a_path);
        let b = load(b_path);
        let reference = algo::gustavson(&a, &b);
        if c.approx_eq(&reference, 1e-9) {
            println!("verification: OK ({} non-zeros)", reference.nnz());
        } else {
            eprintln!("verification FAILED");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "A: {a_rows}x{inner_dim} | B: {b_rows}x{b_cols} — both streamed in {} panels \
         ({} balance)",
        report.panels, report.balance
    );
    println!("result: {} nnz", report.output_nnz);
    println!(
        "partials: {} ({} merge rounds, {}-way)",
        report.partials, report.merge_rounds, report.merge_ways
    );
    println!(
        "budget: {:.2} MiB, peak live: {:.2} MiB",
        report.budget_bytes as f64 / (1 << 20) as f64,
        report.peak_live_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "spill ({} codec): {} writes / {} reads, {:.2} MiB written ({:.2} MiB raw equivalent)",
        report.spill_codec,
        report.spill_writes,
        report.spill_reads,
        report.spill_bytes_written as f64 / (1 << 20) as f64,
        report.spill_bytes_raw_equivalent as f64 / (1 << 20) as f64
    );
    let s = &report.stages;
    println!(
        "stages: reader {:.3}s, multiply {:.3}s, merge {:.3}s (spill write {:.3}s); \
         overlap: {} reads / {} rounds while multiplies in flight",
        s.reader_busy_seconds,
        s.multiply_busy_seconds,
        s.merge_busy_seconds,
        s.spill_write_seconds,
        s.reads_overlapping_multiply,
        s.rounds_overlapping_multiply
    );

    if let Some(path) = flags.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("serialize"),
        )
        .expect("write json");
        println!("\nreport written to {path}");
    }
    write_trace(flags, &executor.recorder().drain("stream"));
    ExitCode::SUCCESS
}

fn cmd_dist(flags: &HashMap<String, String>) -> ExitCode {
    let Some(a_path) = flags.get("a") else {
        usage()
    };
    let a = load(a_path);
    let b = flags.get("b").map(|p| load(p));
    let b = b.as_ref().unwrap_or(&a);
    if a.cols() != b.rows() {
        eprintln!(
            "shape mismatch: A is {}x{} but B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        return ExitCode::FAILURE;
    }

    let shards: usize = flags
        .get("shards")
        .map(|v| v.parse().expect("--shards needs a number"))
        .unwrap_or(2);
    let mut config = DistConfig {
        shards: shards.max(1),
        ..DistConfig::default()
    };
    let tuned =
        flags.get("panels").map(String::as_str) == Some("auto") || flags.contains_key("tune");
    if let Some(panels) = flags.get("panels") {
        if panels != "auto" {
            config.stream.panels = panels
                .parse::<usize>()
                .expect("--panels needs a number (or \"auto\")")
                .max(1);
        }
    }
    if let Some(mb) = flags.get("budget-mb") {
        config.stream.budget =
            MemoryBudget::from_mb(mb.parse().expect("--budget-mb needs a number of MiB"));
    }
    if tuned {
        // Both operands are in memory here, so the planner gets exact
        // histograms on both sides; thread knobs keep their defaults.
        let stats = sparch::tune::OperandStats::from_csr(&a);
        let b_rows = sparch::tune::row_nnz_histogram(b);
        let plan = sparch::tune::KnobPlanner::new(config.stream.budget)
            .with_threads(config.stream.threads.unwrap_or(1))
            .plan(&stats, &sparch::tune::BRows::Histogram(&b_rows));
        println!(
            "auto-tuned: {} panels ({} balance), {}-way merge, {} spill codec{}",
            plan.config.panels,
            plan.config.balance,
            plan.config.merge_ways,
            plan.config.spill_codec,
            if plan.budget_satisfied {
                ""
            } else {
                " (budget formula unachievable; best effort)"
            }
        );
        config.stream = StreamConfig {
            threads: config.stream.threads,
            merge_workers: config.stream.merge_workers,
            spill_dir: config.stream.spill_dir.clone(),
            ..plan.config
        };
    }

    let coordinator = DistCoordinator::new(config).with_recorder(recorder_for(flags));
    let (c, report) = match coordinator.multiply(&a, b) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("distributed multiply failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if flags.contains_key("verify") {
        let reference = algo::gustavson(&a, b);
        if c.approx_eq(&reference, 1e-9) {
            println!("verification: OK ({} non-zeros)", reference.nnz());
        } else {
            eprintln!("verification FAILED");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "A: {}x{}, {} nnz | B: {}x{}, {} nnz",
        a.rows(),
        a.cols(),
        a.nnz(),
        b.rows(),
        b.cols(),
        b.nnz()
    );
    println!("result: {} nnz", report.output_nnz);
    println!(
        "fleet: {} shard worker(s), {} panel pair(s) -> {} partial(s), \
         {} merge round(s) ({}-way)",
        report.shards, report.panels, report.partials, report.merge_rounds, report.merge_ways
    );
    println!(
        "jobs: {} dispatched, {} retried, {} straggler re-dispatch(es)",
        report.dispatches, report.retries, report.straggler_redispatches
    );
    println!(
        "fleet health: {} respawn(s), {} heartbeat timeout(s)",
        report.respawns, report.heartbeat_timeouts
    );
    println!(
        "wire: {:.2} MiB sent, {:.2} MiB received",
        report.wire_bytes_sent as f64 / (1 << 20) as f64,
        report.wire_bytes_received as f64 / (1 << 20) as f64
    );

    if let Some(path) = flags.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("serialize"),
        )
        .expect("write json");
        println!("\nreport written to {path}");
    }
    write_trace(flags, &coordinator.recorder().drain("dist"));
    ExitCode::SUCCESS
}

/// Validates a Chrome trace export: the file must parse, and every
/// `--expect`ed span name must appear as at least one complete ("X")
/// event. Exit code 1 on any miss — CI smoke tests gate on this.
fn cmd_trace_check(flags: &HashMap<String, String>) -> ExitCode {
    let Some(file) = flags.get("file") else {
        usage()
    };
    let Some(expect) = flags.get("expect") else {
        usage()
    };
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root: Value = match serde_json::from_str(&text) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("{file} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = root.get("traceEvents").and_then(Value::as_arr) else {
        eprintln!("{file} has no traceEvents array");
        return ExitCode::FAILURE;
    };
    let mut missing = 0;
    for name in expect.split(',').filter(|n| !n.is_empty()) {
        let spans = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("name").and_then(Value::as_str) == Some(name)
            })
            .count();
        if spans == 0 {
            eprintln!("missing: no {name:?} span in {file}");
            missing += 1;
        } else {
            println!("{name}: {spans} span(s)");
        }
    }
    if missing > 0 {
        return ExitCode::FAILURE;
    }
    println!("trace OK: {} events", events.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "multiply" => cmd_multiply(&flags),
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "batch" => cmd_batch(&flags),
        "stream" => cmd_stream(&flags),
        "dist" => cmd_dist(&flags),
        "trace-check" => cmd_trace_check(&flags),
        _ => usage(),
    }
}
